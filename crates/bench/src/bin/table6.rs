//! Table 6 — ablation study on the WikiTable-style benchmark.
//!
//! Rows: Doduo, Doduo trained+evaluated with shuffled rows, with shuffled
//! columns, Dosolo (no multi-task learning), DosoloSCol (single-column).
//!
//! Paper (micro F1, %): Doduo 92.50/91.90, shuffled rows 91.94/91.61,
//! shuffled cols 92.68/91.98, Dosolo 91.37/91.24, DosoloSCol 82.45/83.08.

use doduo_bench::report::{pct, Report};
use doduo_bench::{shuffled_dataset, ExpOptions, ModelSpec, Splits, World};
use doduo_core::Task;

fn main() {
    let opts = ExpOptions::from_args_for("Table 6: effect of the column-token budget on F1");
    let world = World::bootstrap(opts);
    let splits = world.wikitable();
    let cfg = world.train_config();
    let both = [Task::ColumnType, Task::ColumnRelation];

    let doduo = world.trained_model("wiki-doduo", &ModelSpec::doduo(), &splits, &both, true, &cfg);

    // Shuffled variants: the permutations are applied to train/valid/test
    // alike, as in the paper ("trained and evaluated Doduo on two versions").
    let shuf = |rows: bool, cols: bool, salt: u64| Splits {
        train: shuffled_dataset(&splits.train, rows, cols, world.opts.seed ^ salt),
        valid: shuffled_dataset(&splits.valid, rows, cols, world.opts.seed ^ salt ^ 1),
        test: shuffled_dataset(&splits.test, rows, cols, world.opts.seed ^ salt ^ 2),
    };
    let rows_splits = shuf(true, false, 0xa0);
    let cols_splits = shuf(false, true, 0xc0);
    let shuf_rows = world.trained_model(
        "wiki-doduo-shufrows",
        &ModelSpec::doduo(),
        &rows_splits,
        &both,
        true,
        &cfg,
    );
    let shuf_cols = world.trained_model(
        "wiki-doduo-shufcols",
        &ModelSpec::doduo(),
        &cols_splits,
        &both,
        true,
        &cfg,
    );

    // Dosolo: same architecture, single task each.
    let dosolo_type = world.trained_model(
        "wiki-dosolo-type",
        &ModelSpec::doduo(),
        &splits,
        &[Task::ColumnType],
        true,
        &cfg,
    );
    let dosolo_rel = world.trained_model(
        "wiki-dosolo-rel",
        &ModelSpec::doduo(),
        &splits,
        &[Task::ColumnRelation],
        true,
        &cfg,
    );
    // DosoloSCol: single-column serialization, single task each.
    let scol_type = world.trained_model(
        "wiki-scol-type",
        &ModelSpec::single_column(),
        &splits,
        &[Task::ColumnType],
        true,
        &cfg,
    );
    let scol_rel = world.trained_model(
        "wiki-scol-rel",
        &ModelSpec::single_column(),
        &splits,
        &[Task::ColumnRelation],
        true,
        &cfg,
    );

    let mut r = Report::new(
        "Table 6: WikiTable ablation, micro-F1 (paper vs measured)",
        &["method", "type F1", "rel F1", "paper type", "paper rel"],
    );
    let rel = |s: &doduo_core::EvalScores| s.rel_micro.map(|x| pct(x.f1)).unwrap_or("-".into());
    r.row(&[
        "Doduo".into(),
        pct(doduo.scores.type_micro.f1),
        rel(&doduo.scores),
        "92.5".into(),
        "91.9".into(),
    ]);
    r.row(&[
        "w/ shuffled rows".into(),
        pct(shuf_rows.scores.type_micro.f1),
        rel(&shuf_rows.scores),
        "91.9".into(),
        "91.6".into(),
    ]);
    r.row(&[
        "w/ shuffled cols".into(),
        pct(shuf_cols.scores.type_micro.f1),
        rel(&shuf_cols.scores),
        "92.7".into(),
        "92.0".into(),
    ]);
    r.row(&[
        "Dosolo".into(),
        pct(dosolo_type.scores.type_micro.f1),
        rel(&dosolo_rel.scores),
        "91.4".into(),
        "91.2".into(),
    ]);
    r.row(&[
        "DosoloSCol".into(),
        pct(scol_type.scores.type_micro.f1),
        rel(&scol_rel.scores),
        "82.5".into(),
        "83.1".into(),
    ]);

    let d_t = doduo.scores.type_micro.f1;
    let d_r = doduo.scores.rel_micro.unwrap().f1;
    r.check(
        "multi-task >= single-task (type): Doduo >= Dosolo (paper: 92.50 > 91.37)",
        d_t >= dosolo_type.scores.type_micro.f1 - 0.01,
    );
    r.check(
        "multi-task >= single-task (rel): Doduo >= Dosolo (paper: 91.90 > 91.24)",
        d_r >= dosolo_rel.scores.rel_micro.unwrap().f1 - 0.01,
    );
    r.check(
        "table-wise >> single-column (type): Dosolo > DosoloSCol (paper: 91.37 > 82.45)",
        dosolo_type.scores.type_micro.f1 > scol_type.scores.type_micro.f1,
    );
    r.check(
        "table-wise >> single-column (rel) (paper: 91.24 > 83.08)",
        dosolo_rel.scores.rel_micro.unwrap().f1 > scol_rel.scores.rel_micro.unwrap().f1,
    );
    r.check(
        "row shuffling degrades only mildly (paper: −0.56 type F1, here ≤ 8 pts)",
        (d_t - shuf_rows.scores.type_micro.f1) < 0.08,
    );
    r.check(
        "column shuffling roughly neutral (paper: +0.18 type F1, here |Δ| ≤ 8 pts)",
        (d_t - shuf_cols.scores.type_micro.f1).abs() < 0.08,
    );
    r.print();
    eprintln!("[table6] total elapsed {:?}", world.elapsed());
}
