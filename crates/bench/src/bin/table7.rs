//! Table 7 — ablation on VizNet (Full): Doduo vs the single-column
//! DosoloSCol.
//!
//! Paper (macro / micro F1, %): Doduo 84.6/94.3, DosoloSCol 77.4/90.2 —
//! and DosoloSCol still outperforms Sato, showing how strong the pretrained
//! LM is even without table context.

use doduo_bench::report::{pct, Report};
use doduo_bench::{ExpOptions, ModelSpec, World};
use doduo_core::{predict_types, prepare, Task};
use doduo_eval::macro_f1;

fn main() {
    let opts = ExpOptions::from_args_for("Table 7: single-column vs multi-column input");
    let world = World::bootstrap(opts);
    let splits = world.viznet();
    let cfg = world.train_config();
    let n_types = splits.train.type_vocab.len();

    let mut rows = Vec::new();
    for (name, spec, key) in [
        ("Doduo", ModelSpec::doduo(), "viz-doduo-full"),
        ("DosoloSCol", ModelSpec::single_column(), "viz-scol"),
    ] {
        let m = world.trained_model(key, &spec, &splits, &[Task::ColumnType], false, &cfg);
        let test_p = prepare(&m.model, &splits.test, &world.lm.tokenizer);
        let preds =
            predict_types(&m.model, &m.store, &test_p.types, doduo_tensor::default_threads());
        let (p, g) = preds.single_label();
        let micro = doduo_eval::multi_class_micro(&p, &g).f1;
        let mac = macro_f1(&p, &g, n_types);
        rows.push((name, mac, micro));
    }

    let mut r = Report::new(
        "Table 7: VizNet (Full) ablation (paper vs measured)",
        &["method", "macro F1", "micro F1", "paper macro", "paper micro"],
    );
    let paper = [("84.6", "94.3"), ("77.4", "90.2")];
    for ((name, mac, mic), (pm, pi)) in rows.iter().zip(paper.iter()) {
        r.row(&[(*name).into(), pct(*mac), pct(*mic), (*pm).into(), (*pi).into()]);
    }
    r.check(
        "multi-column beats single-column on micro F1 (paper: 94.3 > 90.2)",
        rows[0].2 > rows[1].2,
    );
    r.check(
        "multi-column beats single-column on macro F1 (paper: 84.6 > 77.4)",
        rows[0].1 > rows[1].1,
    );
    r.print();
    eprintln!("[table7] total elapsed {:?}", world.elapsed());
}
