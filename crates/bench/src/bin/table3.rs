//! Table 3 — main results on the WikiTable-style benchmark.
//!
//! Micro-F1 for column-type and column-relation prediction: Sherlock, the
//! TURL reproduction (visibility-matrix attention), Doduo, and the
//! `+metadata` variants that append column headers to the serialization.
//!
//! Paper (micro F1, %):
//! Sherlock 78.47/–, TURL 88.86/90.94, Doduo 92.45/91.72,
//! TURL+meta 92.69/93.35, Doduo+meta 92.79/92.82.

use doduo_bench::report::{pct, Report};
use doduo_bench::{run_sherlock, ExpOptions, ModelSpec, World};
use doduo_core::Task;
use doduo_eval::multi_label_micro;

fn main() {
    let opts = ExpOptions::from_args_for(
        "Table 3: micro-F1 on WikiTable column types and relations (Doduo vs TURL vs Sherlock)",
    );
    let world = World::bootstrap(opts);
    let splits = world.wikitable();
    let cfg = world.train_config();
    let tasks = [Task::ColumnType, Task::ColumnRelation];

    // Sherlock: single-column, feature-engineered, type task only.
    let (sher_pred, sher_gold) = run_sherlock(&splits, true, world.opts.scale, world.opts.seed);
    let sherlock = multi_label_micro(&sher_pred, &sher_gold);

    let turl = world.trained_model("wiki-turl", &ModelSpec::turl(), &splits, &tasks, true, &cfg);
    let doduo = world.trained_model("wiki-doduo", &ModelSpec::doduo(), &splits, &tasks, true, &cfg);
    let turl_meta = world.trained_model(
        "wiki-turl-meta",
        &ModelSpec::turl().with_metadata(),
        &splits,
        &tasks,
        true,
        &cfg,
    );
    let doduo_meta = world.trained_model(
        "wiki-doduo-meta",
        &ModelSpec::doduo().with_metadata(),
        &splits,
        &tasks,
        true,
        &cfg,
    );

    let mut r = Report::new(
        "Table 3: WikiTable micro-F1 (paper vs measured)",
        &["method", "type P", "type R", "type F1", "rel F1", "paper type F1", "paper rel F1"],
    );
    let fmt = |name: &str, s: &doduo_core::EvalScores, pt: &str, pr: &str, r: &mut Report| {
        r.row(&[
            name.into(),
            pct(s.type_micro.precision),
            pct(s.type_micro.recall),
            pct(s.type_micro.f1),
            s.rel_micro.map(|x| pct(x.f1)).unwrap_or_else(|| "-".into()),
            pt.into(),
            pr.into(),
        ]);
    };
    r.row(&[
        "Sherlock".into(),
        pct(sherlock.precision),
        pct(sherlock.recall),
        pct(sherlock.f1),
        "-".into(),
        "78.5".into(),
        "-".into(),
    ]);
    fmt("TURL (repro)", &turl.scores, "88.9", "90.9", &mut r);
    fmt("Doduo", &doduo.scores, "92.5", "91.7", &mut r);
    fmt("TURL+metadata", &turl_meta.scores, "92.7", "93.4", &mut r);
    fmt("Doduo+metadata", &doduo_meta.scores, "92.8", "92.8", &mut r);

    let d = &doduo.scores;
    let t = &turl.scores;
    r.check(
        "Doduo type F1 > TURL type F1 (paper: 92.45 > 88.86)",
        d.type_micro.f1 > t.type_micro.f1,
    );
    r.check(
        "Doduo type F1 > Sherlock type F1 (paper: 92.45 > 78.47)",
        d.type_micro.f1 > sherlock.f1,
    );
    r.check(
        "Doduo rel F1 >= TURL rel F1 (paper: 91.72 > 90.94)",
        d.rel_micro.unwrap().f1 >= t.rel_micro.unwrap().f1,
    );
    r.check(
        "metadata helps or ties Doduo type F1 (paper: 92.79 >= 92.45)",
        doduo_meta.scores.type_micro.f1 >= d.type_micro.f1 - 0.01,
    );
    r.check(
        "metadata helps TURL more than Doduo (paper: +3.8 vs +0.3 type F1)",
        (turl_meta.scores.type_micro.f1 - t.type_micro.f1)
            > (doduo_meta.scores.type_micro.f1 - d.type_micro.f1) - 0.01,
    );
    r.print();
    eprintln!("[table3] total elapsed {:?}", world.elapsed());
}
