//! Figure 4 — learning efficiency on WikiTable: F1 of Doduo vs Dosolo when
//! trained on 10% / 25% / 50% / 100% of the training data, with TURL's
//! full-data score as the reference line.
//!
//! Paper claims: Doduo consistently >= Dosolo; Doduo with <= 50% of the
//! data already beats TURL on column types.

use doduo_bench::report::{pct, Report};
use doduo_bench::{ExpOptions, ModelSpec, Splits, World};
use doduo_core::Task;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let opts = ExpOptions::from_args_for("Figure 4: F1 vs training-set fraction curves");
    let world = World::bootstrap(opts);
    let splits = world.wikitable();
    let cfg = world.train_config();
    let both = [Task::ColumnType, Task::ColumnRelation];

    let turl = world.trained_model("wiki-turl", &ModelSpec::turl(), &splits, &both, true, &cfg);

    let fracs = [0.10, 0.25, 0.50, 1.00];
    let mut r = Report::new(
        "Figure 4: training-data efficiency on WikiTable (micro F1)",
        &["frac", "Doduo type", "Dosolo type", "Doduo rel", "Dosolo rel"],
    );
    let mut series: Vec<(f64, f64, f64, f64, f64)> = Vec::new();
    for &frac in &fracs {
        let sub = if frac >= 1.0 {
            Splits {
                train: splits.train.clone(),
                valid: splits.valid.clone(),
                test: splits.test.clone(),
            }
        } else {
            let mut rng = StdRng::seed_from_u64(world.opts.seed ^ (frac * 1000.0) as u64);
            Splits {
                train: splits.train.subsample(frac, &mut rng),
                valid: splits.valid.clone(),
                test: splits.test.clone(),
            }
        };
        let tag = (frac * 100.0) as usize;
        let name = |base: &str| {
            if frac >= 1.0 {
                base.to_string() // reuse the full-data checkpoints
            } else {
                format!("{base}-f{tag}")
            }
        };
        let doduo =
            world.trained_model(&name("wiki-doduo"), &ModelSpec::doduo(), &sub, &both, true, &cfg);
        let dosolo_t = world.trained_model(
            &name("wiki-dosolo-type"),
            &ModelSpec::doduo(),
            &sub,
            &[Task::ColumnType],
            true,
            &cfg,
        );
        let dosolo_r = world.trained_model(
            &name("wiki-dosolo-rel"),
            &ModelSpec::doduo(),
            &sub,
            &[Task::ColumnRelation],
            true,
            &cfg,
        );
        let d_t = doduo.scores.type_micro.f1;
        let d_r = doduo.scores.rel_micro.map(|x| x.f1).unwrap_or(f64::NAN);
        let s_t = dosolo_t.scores.type_micro.f1;
        let s_r = dosolo_r.scores.rel_micro.map(|x| x.f1).unwrap_or(f64::NAN);
        r.row(&[format!("{:.0}%", frac * 100.0), pct(d_t), pct(s_t), pct(d_r), pct(s_r)]);
        series.push((frac, d_t, s_t, d_r, s_r));
    }
    r.row(&[
        "TURL@100%".into(),
        pct(turl.scores.type_micro.f1),
        "-".into(),
        pct(turl.scores.rel_micro.unwrap().f1),
        "-".into(),
    ]);

    let full = series.last().unwrap();
    let half = series[2];
    r.check("type F1 grows with data: 100% >= 10%", full.1 >= series[0].1 - 0.01);
    r.check("rel F1 grows with data: 100% >= 10%", full.3 >= series[0].3 - 0.01);
    let doduo_wins = series.iter().filter(|s| s.1 >= s.2 - 0.01).count();
    r.check(
        format!("Doduo >= Dosolo type F1 at most fractions ({doduo_wins}/4, paper: 4/4)"),
        doduo_wins >= 3,
    );
    r.check(
        "Doduo@50% competitive with TURL@100% on types (paper: beats it)",
        half.1 > turl.scores.type_micro.f1 - 0.05,
    );
    r.print();
    eprintln!("[figure4] total elapsed {:?}", world.elapsed());
}
