//! Table 10 — per-class F1 on WikiTable for classes that are "less clearly
//! distinguishable": 6 column types (music / american-football families)
//! and 6 column relations (film / person families), Doduo vs Dosolo.
//!
//! The paper's claim: multi-task learning helps most on confusable classes
//! (e.g. music.writer 75.0 vs 40.0; place_lived 86.0 vs 77.7).

use doduo_bench::report::{pct, Report};
use doduo_bench::{ExpOptions, ModelSpec, World};
use doduo_core::{predict_rels, predict_types, prepare, Task};
use doduo_eval::per_class_prf_multi;

fn main() {
    let opts = ExpOptions::from_args_for("Table 10: label-efficiency under reduced training data");
    let world = World::bootstrap(opts);
    let splits = world.wikitable();
    let cfg = world.train_config();
    let threads = doduo_tensor::default_threads();

    let doduo = world.trained_model(
        "wiki-doduo",
        &ModelSpec::doduo(),
        &splits,
        &[Task::ColumnType, Task::ColumnRelation],
        true,
        &cfg,
    );
    let dosolo_type = world.trained_model(
        "wiki-dosolo-type",
        &ModelSpec::doduo(),
        &splits,
        &[Task::ColumnType],
        true,
        &cfg,
    );
    let dosolo_rel = world.trained_model(
        "wiki-dosolo-rel",
        &ModelSpec::doduo(),
        &splits,
        &[Task::ColumnRelation],
        true,
        &cfg,
    );

    let tok = &world.lm.tokenizer;
    let test_doduo = prepare(&doduo.model, &splits.test, tok);
    let n_types = splits.train.type_vocab.len();
    let n_rels = splits.train.rel_vocab.len();

    let doduo_types = predict_types(&doduo.model, &doduo.store, &test_doduo.types, threads);
    let dosolo_types =
        predict_types(&dosolo_type.model, &dosolo_type.store, &test_doduo.types, threads);
    let doduo_ty_f1 = per_class_prf_multi(&doduo_types.pred, &doduo_types.gold, n_types);
    let dosolo_ty_f1 = per_class_prf_multi(&dosolo_types.pred, &dosolo_types.gold, n_types);

    let doduo_rels = predict_rels(&doduo.model, &doduo.store, &test_doduo.rels, threads);
    let dosolo_rels = predict_rels(&dosolo_rel.model, &dosolo_rel.store, &test_doduo.rels, threads);
    let doduo_rel_f1 = per_class_prf_multi(&doduo_rels.pred, &doduo_rels.gold, n_rels);
    let dosolo_rel_f1 = per_class_prf_multi(&dosolo_rels.pred, &dosolo_rels.gold, n_rels);

    let type_classes: &[(&str, &str, &str)] = &[
        ("music.artist", "84.0", "81.9"),
        ("music.genre", "93.3", "87.5"),
        ("music.writer", "75.0", "40.0"),
        ("american_football.football_coach", "70.6", "66.7"),
        ("american_football.football_conference", "44.4", "36.4"),
        ("american_football.football_team", "86.7", "86.4"),
    ];
    let rel_classes: &[(&str, &str, &str)] = &[
        ("film.film.production_companies", "81.0", "74.3"),
        ("film.film.produced_by", "43.9", "38.9"),
        ("film.film.story_by", "100.0", "90.9"),
        ("people.person.place_of_birth", "92.0", "90.8"),
        ("people.person.place_lived", "86.0", "77.7"),
        ("people.person.nationality", "100.0", "98.8"),
    ];

    let mut r = Report::new(
        "Table 10: per-class F1, Doduo vs Dosolo (paper vs measured)",
        &["class", "Doduo F1", "Dosolo F1", "paper Doduo", "paper Dosolo"],
    );
    let mut doduo_wins = 0usize;
    let mut total = 0usize;
    for &(name, p_doduo, p_dosolo) in type_classes {
        let id = splits.train.type_vocab.id(name).expect("class in vocab") as usize;
        r.row(&[
            name.into(),
            pct(doduo_ty_f1[id].f1),
            pct(dosolo_ty_f1[id].f1),
            p_doduo.into(),
            p_dosolo.into(),
        ]);
        doduo_wins += usize::from(doduo_ty_f1[id].f1 >= dosolo_ty_f1[id].f1);
        total += 1;
    }
    for &(name, p_doduo, p_dosolo) in rel_classes {
        let id = splits.train.rel_vocab.id(name).expect("relation in vocab") as usize;
        r.row(&[
            name.into(),
            pct(doduo_rel_f1[id].f1),
            pct(dosolo_rel_f1[id].f1),
            p_doduo.into(),
            p_dosolo.into(),
        ]);
        doduo_wins += usize::from(doduo_rel_f1[id].f1 >= dosolo_rel_f1[id].f1);
        total += 1;
    }
    r.check(
        format!("Doduo >= Dosolo on most confusable classes ({doduo_wins}/{total}; paper: 12/12)"),
        doduo_wins * 2 >= total,
    );
    r.print();
    eprintln!("[table10] total elapsed {:?}", world.elapsed());
}
