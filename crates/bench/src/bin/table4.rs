//! Table 4 — main results on the VizNet-style benchmark (single-label
//! column typing): Sherlock, Sato, Doduo, on both the Full dataset and the
//! Multi-column-only variant.
//!
//! Paper (macro / micro F1, %): Full — Sherlock 69.2/86.7, Sato 75.6/88.4,
//! Doduo 84.6/94.3. Multi-column only — Sherlock 64.2/87.9, Sato 73.5/92.5,
//! Doduo 83.8/96.4.

use doduo_baselines::{Sato, SatoConfig, SherlockConfig};
use doduo_bench::report::{pct, Report};
use doduo_bench::{run_sherlock, ExpOptions, ModelSpec, Scale, Splits, World};
use doduo_core::{predict_types, prepare, Task};
use doduo_datagen::multi_column_only;
use doduo_eval::{macro_f1, multi_label_micro};

fn eval_variant(world: &World, splits: &Splits, tag: &str) -> [(String, f64, f64); 3] {
    let n_types = splits.train.type_vocab.len();

    // Sherlock.
    let (sher_pred, sher_gold) = run_sherlock(splits, false, world.opts.scale, world.opts.seed);
    let sher_micro = multi_label_micro(&sher_pred, &sher_gold).f1;
    let sp: Vec<u32> = sher_pred.iter().map(|s| s[0]).collect();
    let sg: Vec<u32> = sher_gold.iter().map(|s| s[0]).collect();
    let sher_macro = macro_f1(&sp, &sg, n_types);

    // Sato.
    let sato = Sato::train(
        &splits.train,
        SatoConfig {
            mlp: SherlockConfig {
                epochs: if world.opts.scale == Scale::Full { 80 } else { 30 },
                seed: world.opts.seed,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let (sato_p, sato_g) = sato.predict_single(&splits.test);
    let sato_micro = doduo_eval::multi_class_micro(&sato_p, &sato_g).f1;
    let sato_macro = macro_f1(&sato_p, &sato_g, n_types);

    // Doduo (type task only — VizNet has no relation labels, §5.4).
    let cfg = world.train_config();
    let m = world.trained_model(
        &format!("viz-doduo-{tag}"),
        &ModelSpec::doduo(),
        splits,
        &[Task::ColumnType],
        false,
        &cfg,
    );
    let test_p = prepare(&m.model, &splits.test, &world.lm.tokenizer);
    let preds = predict_types(&m.model, &m.store, &test_p.types, doduo_tensor::default_threads());
    let (dp, dg) = preds.single_label();
    let doduo_micro = doduo_eval::multi_class_micro(&dp, &dg).f1;
    let doduo_macro = macro_f1(&dp, &dg, n_types);

    [
        ("Sherlock".to_string(), sher_macro, sher_micro),
        ("Sato".to_string(), sato_macro, sato_micro),
        ("Doduo".to_string(), doduo_macro, doduo_micro),
    ]
}

fn main() {
    let opts = ExpOptions::from_args_for(
        "Table 4: micro/macro-F1 on VizNet column types (Doduo vs Sherlock)",
    );
    let world = World::bootstrap(opts);
    let full = world.viznet();
    let multi = Splits {
        train: multi_column_only(&full.train),
        valid: multi_column_only(&full.valid),
        test: multi_column_only(&full.test),
    };

    let full_rows = eval_variant(&world, &full, "full");
    let multi_rows = eval_variant(&world, &multi, "multi");

    let paper_full = [("69.2", "86.7"), ("75.6", "88.4"), ("84.6", "94.3")];
    let paper_multi = [("64.2", "87.9"), ("73.5", "92.5"), ("83.8", "96.4")];

    let mut r = Report::new(
        "Table 4: VizNet macro/micro F1 (paper vs measured)",
        &["variant", "method", "macro F1", "micro F1", "paper macro", "paper micro"],
    );
    for (rows, papers, tag) in
        [(&full_rows, &paper_full, "Full"), (&multi_rows, &paper_multi, "Multi-col")]
    {
        for ((name, mac, mic), (p_mac, p_mic)) in rows.iter().zip(papers.iter()) {
            r.row(&[
                tag.into(),
                name.clone(),
                pct(*mac),
                pct(*mic),
                (*p_mac).into(),
                (*p_mic).into(),
            ]);
        }
    }

    for (rows, tag) in [(&full_rows, "Full"), (&multi_rows, "Multi-col")] {
        r.check(
            format!("{tag}: Doduo micro > Sato micro (paper: 94.3 > 88.4)"),
            rows[2].2 > rows[1].2,
        );
        r.check(
            format!("{tag}: Doduo macro > Sato macro (paper: 84.6 > 75.6)"),
            rows[2].1 > rows[1].1,
        );
        r.check(
            format!("{tag}: Sato >= Sherlock micro (paper: 88.4 > 86.7)"),
            rows[1].2 >= rows[0].2 - 0.02,
        );
    }
    r.print();
    eprintln!("[table4] total elapsed {:?}", world.elapsed());
}
