//! Figure 5 — per-class F1 of Doduo vs Sato on VizNet, Full and
//! Multi-column-only variants.
//!
//! The paper's reading: Doduo is consistently at least as good as Sato on
//! nearly every class, and Sato collapses (zero or near-zero F1) on rare
//! classes (religion, education, organisation) while Doduo stays robust.

use doduo_baselines::{Sato, SatoConfig, SherlockConfig};
use doduo_bench::report::{pct, Report};
use doduo_bench::{ExpOptions, ModelSpec, Scale, Splits, World};
use doduo_core::{predict_types, prepare, Task};
use doduo_datagen::multi_column_only;
use doduo_eval::{class_support, per_class_prf};

fn variant(world: &World, splits: &Splits, tag: &str) -> (Vec<f64>, Vec<f64>, Vec<usize>) {
    let n_types = splits.train.type_vocab.len();
    let sato = Sato::train(
        &splits.train,
        SatoConfig {
            mlp: SherlockConfig {
                epochs: if world.opts.scale == Scale::Full { 80 } else { 30 },
                seed: world.opts.seed,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let (sato_p, sato_g) = sato.predict_single(&splits.test);
    let sato_f1: Vec<f64> = per_class_prf(&sato_p, &sato_g, n_types).iter().map(|p| p.f1).collect();

    let cfg = world.train_config();
    let m = world.trained_model(
        &format!("viz-doduo-{tag}"),
        &ModelSpec::doduo(),
        splits,
        &[Task::ColumnType],
        false,
        &cfg,
    );
    let test_p = prepare(&m.model, &splits.test, &world.lm.tokenizer);
    let preds = predict_types(&m.model, &m.store, &test_p.types, doduo_tensor::default_threads());
    let (dp, dg) = preds.single_label();
    let doduo_f1: Vec<f64> = per_class_prf(&dp, &dg, n_types).iter().map(|p| p.f1).collect();
    (doduo_f1, sato_f1, class_support(&dg, n_types))
}

fn main() {
    let opts = ExpOptions::from_args_for("Figure 5: F1 vs sequence budget curves");
    let world = World::bootstrap(opts);
    let full = world.viznet();
    let multi = Splits {
        train: multi_column_only(&full.train),
        valid: multi_column_only(&full.valid),
        test: multi_column_only(&full.test),
    };

    for (splits, tag, title) in [
        (&full, "full", "Figure 5 (Full): per-class F1, Doduo vs Sato"),
        (&multi, "multi", "Figure 5 (Multi-column only): per-class F1, Doduo vs Sato"),
    ] {
        let (doduo_f1, sato_f1, support) = variant(&world, splits, tag);
        let vocab = &splits.train.type_vocab;
        // Sort classes by Doduo F1 descending, as the figure does.
        let mut order: Vec<usize> = (0..vocab.len()).filter(|&c| support[c] > 0).collect();
        order.sort_by(|&a, &b| doduo_f1[b].partial_cmp(&doduo_f1[a]).expect("finite"));

        let mut r = Report::new(title, &["class", "support", "Doduo F1", "Sato F1"]);
        for &c in &order {
            r.row(&[
                vocab.name(c as u32).into(),
                support[c].to_string(),
                pct(doduo_f1[c]),
                pct(sato_f1[c]),
            ]);
        }
        let wins = order.iter().filter(|&&c| doduo_f1[c] >= sato_f1[c] - 1e-9).count();
        let sato_zero = order.iter().filter(|&&c| sato_f1[c] < 1e-9).count();
        let doduo_zero = order.iter().filter(|&&c| doduo_f1[c] < 1e-9).count();
        r.check(
            format!("Doduo >= Sato on a large majority of classes ({wins}/{})", order.len()),
            wins * 3 >= order.len() * 2,
        );
        r.check(
            format!("Doduo has <= as many zero-F1 classes as Sato ({doduo_zero} vs {sato_zero})"),
            doduo_zero <= sato_zero,
        );
        r.print();
    }
    eprintln!("[figure5] total elapsed {:?}", world.elapsed());
}
