//! Bench-artifact report and schema gate.
//!
//! The committed `BENCH_*.json` files are the repo's performance evidence;
//! CI regenerates some of them on every push and downstream tooling (and
//! the ROADMAP) reads them. This binary keeps them honest:
//!
//! * `report` — list every `BENCH_*.json` in the working directory with its
//!   headline numbers;
//! * `report --check` — validate each file against the expected schema for
//!   its `"bench"` kind (`throughput`, `gemm`, `serve`) and exit non-zero
//!   on any violation. Wired into the CI build job, so a binary that
//!   silently changes its JSON shape fails the push that does it.
//!
//! JSON parsing reuses the daemon's hand-rolled parser — no new deps.

use doduo_served::json::Json;
use std::path::{Path, PathBuf};

/// One validation problem in one file.
struct Violation {
    file: String,
    what: String,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let check = match args.get(1).map(String::as_str) {
        None => false,
        Some("--check") => true,
        Some(other) => {
            eprintln!("unknown argument {other} (expected --check)");
            std::process::exit(2);
        }
    };

    let mut files: Vec<PathBuf> = std::fs::read_dir(".")
        .expect("read working directory")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    if files.is_empty() {
        eprintln!("[report] no BENCH_*.json files found in {:?}", std::env::current_dir().ok());
        std::process::exit(1);
    }

    let mut violations: Vec<Violation> = Vec::new();
    for path in &files {
        match check_file(path) {
            Ok(headline) => {
                println!("[report] {:<24} OK   {headline}", display_name(path));
            }
            Err(errs) => {
                println!("[report] {:<24} FAIL ({} problems)", display_name(path), errs.len());
                for e in errs {
                    violations.push(Violation { file: display_name(path), what: e });
                }
            }
        }
    }

    if !violations.is_empty() {
        eprintln!("\n[report] schema violations:");
        for v in &violations {
            eprintln!("  {}: {}", v.file, v.what);
        }
        if check {
            std::process::exit(1);
        }
    } else if check {
        println!("[report] all {} bench artifacts match their schemas", files.len());
    }
}

fn display_name(p: &Path) -> String {
    p.file_name().and_then(|n| n.to_str()).unwrap_or("?").to_string()
}

/// Validates one file, returning a one-line headline on success.
fn check_file(path: &Path) -> Result<String, Vec<String>> {
    let text = std::fs::read_to_string(path).map_err(|e| vec![format!("unreadable: {e}")])?;
    let v = Json::parse(&text).map_err(|e| vec![format!("not valid JSON: {e}")])?;
    let mut c = Checker::default();
    c.str_in(&v, "scale", &["quick", "full"]);
    c.num(&v, "seed");
    let kind = match v.get("bench").and_then(Json::as_str) {
        Some(k) => k.to_string(),
        None => {
            c.errs.push("missing string field \"bench\"".into());
            return Err(c.errs);
        }
    };
    let headline = match kind.as_str() {
        "throughput" => check_throughput(&v, &mut c),
        "gemm" => check_gemm(&v, &mut c),
        "serve" => check_serve(&v, &mut c),
        other => {
            c.errs.push(format!("unknown bench kind {other:?}"));
            String::new()
        }
    };
    if c.errs.is_empty() {
        Ok(headline)
    } else {
        Err(c.errs)
    }
}

#[derive(Default)]
struct Checker {
    errs: Vec<String>,
}

impl Checker {
    fn num(&mut self, v: &Json, key: &str) -> f64 {
        match v.get(key).and_then(Json::as_f64) {
            Some(n) if n.is_finite() => n,
            _ => {
                self.errs.push(format!("missing/non-finite number field {key:?}"));
                0.0
            }
        }
    }

    fn str_in(&mut self, v: &Json, key: &str, allowed: &[&str]) {
        match v.get(key).and_then(Json::as_str) {
            Some(s) if allowed.contains(&s) => {}
            Some(s) => self.errs.push(format!("{key:?} is {s:?}, expected one of {allowed:?}")),
            None => self.errs.push(format!("missing string field {key:?}")),
        }
    }

    fn str_any(&mut self, v: &Json, key: &str) {
        if v.get(key).and_then(Json::as_str).is_none() {
            self.errs.push(format!("missing string field {key:?}"));
        }
    }

    fn arr<'a>(&mut self, v: &'a Json, key: &str) -> &'a [Json] {
        match v.get(key).and_then(Json::as_array) {
            Some(a) if !a.is_empty() => a,
            Some(_) => {
                self.errs.push(format!("array field {key:?} must not be empty"));
                &[]
            }
            None => {
                self.errs.push(format!("missing array field {key:?}"));
                &[]
            }
        }
    }
}

fn check_throughput(v: &Json, c: &mut Checker) -> String {
    c.num(v, "corpus_tables");
    let threads = c.num(v, "max_threads");
    let results = c.arr(v, "results").to_vec();
    let mut best = 0.0f64;
    let mut has_sequential = false;
    for (i, r) in results.iter().enumerate() {
        c.str_in(r, "mode", &["sequential", "batched", "batched_gemm_stripes"]);
        for k in ["batch_size", "threads", "tables", "elapsed_ms", "tables_per_sec"] {
            c.num(r, k);
        }
        c.num(r, "cache_hit_rate");
        if r.get("mode").and_then(Json::as_str) == Some("sequential") {
            has_sequential = true;
        }
        best = best.max(r.get("tables_per_sec").and_then(Json::as_f64).unwrap_or(0.0));
        if c.errs.len() > 16 {
            c.errs.push(format!("... giving up at results[{i}]"));
            break;
        }
    }
    if !has_sequential {
        c.errs.push("no \"sequential\" baseline cell in results".into());
    }
    for t in c.arr(v, "thread_scaling").to_vec() {
        c.num(&t, "threads");
        c.num(&t, "best_tables_per_sec");
    }
    match v.get("speedup") {
        Some(s) => {
            c.num(s, "value");
            for side in ["numerator", "denominator"] {
                match s.get(side) {
                    Some(side_v) => {
                        c.str_any(side_v, "mode");
                        c.num(side_v, "batch_size");
                        c.num(side_v, "threads");
                    }
                    None => c.errs.push(format!("speedup is missing {side:?}")),
                }
            }
        }
        None => c.errs.push("missing object field \"speedup\"".into()),
    }
    format!("{} cells, best {best:.0} tables/sec, {threads:.0} threads", results.len())
}

fn check_gemm(v: &Json, c: &mut Checker) -> String {
    c.num(v, "max_threads");
    c.arr(v, "thread_grid");
    let shapes = c.arr(v, "shapes").to_vec();
    for s in &shapes {
        c.str_any(s, "label");
        c.str_in(s, "variant", &["nn", "nt", "tn"]);
        for k in ["m", "k", "n", "naive_gflops", "speedup_blocked_1t_vs_naive"] {
            c.num(s, k);
        }
        for b in c.arr(s, "blocked").to_vec() {
            c.num(&b, "threads");
            c.num(&b, "gflops");
        }
        if c.errs.len() > 16 {
            c.errs.push("... giving up".into());
            break;
        }
    }
    let min = c.num(v, "min_speedup_blocked_1t_vs_naive_mini_shapes");
    format!("{} shapes, min mini-shape speedup {min:.2}x", shapes.len())
}

fn check_serve(v: &Json, c: &mut Checker) -> String {
    c.num(v, "corpus_tables");
    c.num(v, "max_threads");
    let results = c.arr(v, "results").to_vec();
    let mut best = 0.0f64;
    for r in &results {
        c.str_in(r, "topology", &["thread_per_conn", "pool"]);
        c.str_in(r, "mode", &["request", "stream"]);
        c.str_in(r, "policy", &["eager", "coalesce"]);
        for k in [
            "workers",
            "max_delay_ms",
            "clients",
            "requests",
            "connects",
            "conn_reuse_rate",
            "secs",
            "tables_per_sec",
        ] {
            c.num(r, k);
        }
        match r.get("latency_ms") {
            Some(l) => {
                for k in ["mean", "p50", "p99", "max"] {
                    c.num(l, k);
                }
                let (p50, p99) = (
                    l.get("p50").and_then(Json::as_f64).unwrap_or(0.0),
                    l.get("p99").and_then(Json::as_f64).unwrap_or(0.0),
                );
                if p99 + 1e-9 < p50 {
                    c.errs.push(format!("latency p99 {p99} < p50 {p50}"));
                }
            }
            None => c.errs.push("cell is missing \"latency_ms\"".into()),
        }
        best = best.max(r.get("tables_per_sec").and_then(Json::as_f64).unwrap_or(0.0));
        if c.errs.len() > 16 {
            c.errs.push("... giving up".into());
            break;
        }
    }
    format!("{} cells, best {best:.0} tables/sec", results.len())
}
