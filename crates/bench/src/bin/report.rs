//! Bench-artifact report and schema gate.
//!
//! The committed `BENCH_*.json` files are the repo's performance evidence;
//! CI regenerates them on every push and downstream tooling (and the
//! ROADMAP) reads them. This binary keeps them honest:
//!
//! * `report` — list every `BENCH_*.json` in the working directory with its
//!   headline numbers;
//! * `report --check` — validate each file against the expected schema for
//!   its `"bench"` kind (`throughput`, `gemm`, `serve`) — including the
//!   required `host` metadata block — and exit non-zero on any violation.
//!   Wired into CI's repro job, so a binary that silently changes its JSON
//!   shape (or an artifact measured on an undisclosed host) fails the push
//!   that does it.
//!
//! The validation itself lives in `doduo_bench::artifact` so the `repro`
//! harness and unit tests share it.

use doduo_bench::artifact::check_bench_file;
use std::path::{Path, PathBuf};

/// One validation problem in one file.
struct Violation {
    file: String,
    what: String,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let check = match args.get(1).map(String::as_str) {
        None => false,
        Some("--check") => true,
        Some("--help") | Some("-h") => {
            println!(
                "usage: report [--check]\n\n\
                 Lists every BENCH_*.json in the working directory with its headline\n\
                 numbers. With --check, validates each file's schema and required\n\
                 host metadata block and exits non-zero on any violation."
            );
            return;
        }
        Some(other) => {
            eprintln!("unknown argument {other} (expected --check)");
            std::process::exit(2);
        }
    };

    let mut files: Vec<PathBuf> = std::fs::read_dir(".")
        .expect("read working directory")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    if files.is_empty() {
        eprintln!("[report] no BENCH_*.json files found in {:?}", std::env::current_dir().ok());
        std::process::exit(1);
    }

    let mut violations: Vec<Violation> = Vec::new();
    for path in &files {
        match check_bench_file(path) {
            Ok(headline) => {
                println!("[report] {:<24} OK   {headline}", display_name(path));
            }
            Err(errs) => {
                println!("[report] {:<24} FAIL ({} problems)", display_name(path), errs.len());
                for e in errs {
                    violations.push(Violation { file: display_name(path), what: e });
                }
            }
        }
    }

    if !violations.is_empty() {
        eprintln!("\n[report] schema violations:");
        for v in &violations {
            eprintln!("  {}: {}", v.file, v.what);
        }
        if check {
            std::process::exit(1);
        }
    } else if check {
        println!("[report] all {} bench artifacts match their schemas", files.len());
    }
}

fn display_name(p: &Path) -> String {
    p.file_name().and_then(|n| n.to_str()).unwrap_or("?").to_string()
}
