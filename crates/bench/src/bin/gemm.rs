//! GEMM kernel micro-benchmark (not a paper experiment — the hot-loop
//! lever of the ROADMAP's "as fast as the hardware allows" north star).
//!
//! Measures GFLOP/s of the naive reference loops against the cache-blocked
//! kernel layer (`doduo_tensor::kernels`) at transformer-relevant shapes —
//! the mini encoder's projections, FFN halves, per-head attention scores,
//! and backward dW/dX products — across all three matmul variants and a
//! thread grid `{1, 2, 4, …, N}`. Forward (`nn`) shapes additionally
//! measure the int8 `QuantizedLinear` path (Gop/s, counting one
//! multiply-accumulate as two ops like the f32 cells) and its speedup over
//! the blocked f32 kernel. Writes the measurements to `BENCH_gemm.json`
//! and checks two acceptance bars: blocked single-thread ≥ 2x naive at the
//! mini-encoder shapes, and int8 ≥ 2x blocked f32 at one or more
//! mini-encoder shapes.
//!
//! Run: `cargo run --release -p doduo-bench --bin gemm -- --scale quick`

use doduo_bench::report::Report;
use doduo_bench::{ExpOptions, Scale};
use doduo_tensor::kernels::{
    matmul_blocked, matmul_naive, matmul_nt_blocked, matmul_nt_naive, matmul_tn_blocked,
    matmul_tn_naive,
};
use doduo_tensor::{default_threads, QuantizedLinear, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Which of the three kernel variants a shape exercises.
#[derive(Clone, Copy, PartialEq)]
enum Variant {
    Nn,
    Nt,
    Tn,
}

impl Variant {
    fn name(self) -> &'static str {
        match self {
            Variant::Nn => "nn",
            Variant::Nt => "nt",
            Variant::Tn => "tn",
        }
    }
}

/// One benchmarked shape: `m`×`k` times `k`×`n` (in the variant's layout).
struct Shape {
    label: &'static str,
    variant: Variant,
    m: usize,
    k: usize,
    n: usize,
    /// Counts toward the ≥2x mini-encoder acceptance bar.
    mini: bool,
}

struct Cell {
    label: &'static str,
    variant: &'static str,
    m: usize,
    k: usize,
    n: usize,
    mini: bool,
    naive_gflops: f64,
    /// `(threads, gflops)` per thread-grid point.
    blocked_gflops: Vec<(usize, f64)>,
    /// Single-thread int8 `QuantizedLinear` forward, in Gop/s (same op
    /// count as the f32 cells). `None` for shapes the quantized layer does
    /// not serve (`nt`/`tn` are training-only products).
    int8_gops: Option<f64>,
}

/// Median seconds per call of `f`, batching calls so each timed sample
/// spans at least a few milliseconds.
fn time_per_call(mut f: impl FnMut(), min_total_secs: f64) -> f64 {
    f(); // warm-up: faults pages, fills packing scratch
    let probe = Instant::now();
    f();
    let once = probe.elapsed().as_secs_f64().max(1e-7);
    let batch = (5e-3 / once).ceil() as usize;
    let mut samples = Vec::new();
    let t0 = Instant::now();
    while t0.elapsed().as_secs_f64() < min_total_secs || samples.len() < 5 {
        let s0 = Instant::now();
        for _ in 0..batch {
            f();
        }
        samples.push(s0.elapsed().as_secs_f64() / batch as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    samples[samples.len() / 2]
}

fn main() {
    let opts = ExpOptions::from_args_for(
        "GEMM kernel bench: naive vs blocked vs threaded, writes BENCH_gemm.json",
    );
    let started = Instant::now();
    let min_secs = match opts.scale {
        Scale::Full => 0.4,
        Scale::Quick => 0.12,
    };

    // The mini encoder (96 hidden, 4 heads, 384 FFN) serialized at the
    // paper's 32-token column budget yields sequences around 76 tokens and
    // up to max_seq = 192; those are the shapes every training step and
    // every `BatchAnnotator` forward grinds through.
    let shapes = [
        Shape { label: "attn_proj_s76", variant: Variant::Nn, m: 76, k: 96, n: 96, mini: true },
        Shape { label: "ffn_up_s76", variant: Variant::Nn, m: 76, k: 96, n: 384, mini: true },
        Shape { label: "ffn_down_s76", variant: Variant::Nn, m: 76, k: 384, n: 96, mini: true },
        Shape { label: "attn_proj_s192", variant: Variant::Nn, m: 192, k: 96, n: 96, mini: true },
        Shape { label: "ffn_up_s192", variant: Variant::Nn, m: 192, k: 96, n: 384, mini: true },
        Shape { label: "vocab_head_s76", variant: Variant::Nn, m: 76, k: 96, n: 1024, mini: false },
        Shape { label: "attn_scores_h24", variant: Variant::Nt, m: 76, k: 24, n: 76, mini: false },
        Shape { label: "grad_dx_s76", variant: Variant::Nt, m: 76, k: 96, n: 96, mini: true },
        Shape { label: "grad_dw_s76", variant: Variant::Tn, m: 96, k: 76, n: 96, mini: true },
        Shape { label: "grad_dw_ffn", variant: Variant::Tn, m: 96, k: 76, n: 384, mini: true },
        Shape { label: "square_256", variant: Variant::Nn, m: 256, k: 256, n: 256, mini: false },
    ];

    let max_threads = default_threads();
    let mut thread_grid = vec![1usize];
    let mut t = 2;
    while t < max_threads {
        thread_grid.push(t);
        t *= 2;
    }
    if max_threads > 1 {
        thread_grid.push(max_threads);
    }

    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut cells: Vec<Cell> = Vec::new();
    for s in &shapes {
        // Operands in the layout each variant consumes: nt takes B as
        // [n, k], tn takes A as [k, m].
        let (a, b) = match s.variant {
            Variant::Nn => {
                (Tensor::randn(s.m, s.k, 1.0, &mut rng), Tensor::randn(s.k, s.n, 1.0, &mut rng))
            }
            Variant::Nt => {
                (Tensor::randn(s.m, s.k, 1.0, &mut rng), Tensor::randn(s.n, s.k, 1.0, &mut rng))
            }
            Variant::Tn => {
                (Tensor::randn(s.k, s.m, 1.0, &mut rng), Tensor::randn(s.k, s.n, 1.0, &mut rng))
            }
        };
        let flops = 2.0 * s.m as f64 * s.n as f64 * s.k as f64;
        let gflops = |secs: f64| flops / secs / 1e9;

        let naive: &dyn Fn(&Tensor, &Tensor) -> Tensor = match s.variant {
            Variant::Nn => &matmul_naive,
            Variant::Nt => &matmul_nt_naive,
            Variant::Tn => &matmul_tn_naive,
        };
        let blocked: &dyn Fn(&Tensor, &Tensor, usize) -> Tensor = match s.variant {
            Variant::Nn => &matmul_blocked,
            Variant::Nt => &matmul_nt_blocked,
            Variant::Tn => &matmul_tn_blocked,
        };

        let naive_gflops = gflops(time_per_call(
            || {
                std::hint::black_box(naive(&a, &b));
            },
            min_secs,
        ));
        let blocked_gflops: Vec<(usize, f64)> = thread_grid
            .iter()
            .map(|&threads| {
                let secs = time_per_call(
                    || {
                        std::hint::black_box(blocked(&a, &b, threads));
                    },
                    min_secs,
                );
                (threads, gflops(secs))
            })
            .collect();
        // The inference-path int8 layer only computes `x·W + b` (`nn`); the
        // transposed variants are training-only, so they have no int8 cell.
        let int8_gops = (s.variant == Variant::Nn).then(|| {
            let bias = Tensor::zeros(1, s.n);
            let q = QuantizedLinear::from_f32(&b, &bias);
            gflops(time_per_call(
                || {
                    std::hint::black_box(q.forward_with_threads(&a, 1));
                },
                min_secs,
            ))
        });
        eprintln!(
            "[gemm] {:<16} {} {}x{}x{}: naive {:>6.2} GFLOP/s, blocked {:?}, int8 {}",
            s.label,
            s.variant.name(),
            s.m,
            s.k,
            s.n,
            naive_gflops,
            blocked_gflops.iter().map(|(t, g)| format!("{t}t:{g:.2}")).collect::<Vec<_>>(),
            int8_gops.map(|g| format!("{g:.2} Gop/s")).unwrap_or_else(|| "-".into()),
        );
        cells.push(Cell {
            label: s.label,
            variant: s.variant.name(),
            m: s.m,
            k: s.k,
            n: s.n,
            mini: s.mini,
            naive_gflops,
            blocked_gflops,
            int8_gops,
        });
    }

    let mut r = Report::new(
        "GEMM kernels (naive vs cache-blocked vs int8)",
        &[
            "shape",
            "variant",
            "m",
            "k",
            "n",
            "naive GF/s",
            "blocked 1t GF/s",
            "speedup 1t",
            "best threaded GF/s",
            "int8 1t Gop/s",
            "int8 vs f32 1t",
        ],
    );
    let mut min_mini_speedup = f64::INFINITY;
    let mut max_mini_int8_speedup = 0.0f64;
    for c in &cells {
        let one_t = c.blocked_gflops[0].1;
        let speedup = one_t / c.naive_gflops;
        if c.mini {
            min_mini_speedup = min_mini_speedup.min(speedup);
            if let Some(gops) = c.int8_gops {
                max_mini_int8_speedup = max_mini_int8_speedup.max(gops / one_t);
            }
        }
        let best = c.blocked_gflops.iter().map(|(_, g)| *g).fold(0.0f64, f64::max);
        r.row(&[
            c.label.to_string(),
            c.variant.to_string(),
            c.m.to_string(),
            c.k.to_string(),
            c.n.to_string(),
            format!("{:.2}", c.naive_gflops),
            format!("{:.2}", one_t),
            format!("{speedup:.2}x"),
            format!("{best:.2}"),
            c.int8_gops.map(|g| format!("{g:.2}")).unwrap_or_else(|| "-".into()),
            c.int8_gops.map(|g| format!("{:.2}x", g / one_t)).unwrap_or_else(|| "-".into()),
        ]);
    }
    r.check(
        format!("blocked 1-thread >= 2x naive at mini-encoder shapes (min {min_mini_speedup:.2}x)"),
        min_mini_speedup >= 2.0,
    );
    r.check(
        format!(
            "int8 >= 2x blocked f32 at >= 1 mini-encoder shape (max {max_mini_int8_speedup:.2}x)"
        ),
        max_mini_int8_speedup >= 2.0,
    );
    r.print();

    let json = render_json(
        &opts,
        max_threads,
        &thread_grid,
        &cells,
        min_mini_speedup,
        max_mini_int8_speedup,
    );
    std::fs::write("BENCH_gemm.json", json).expect("write BENCH_gemm.json");
    eprintln!("[gemm] wrote BENCH_gemm.json, total elapsed {:?}", started.elapsed());
    // Like the throughput bench, the 2x check is recorded but does not fail
    // the process: CI treats this as a report-only smoke job because shared
    // runners have unpredictable clocks.
}

fn render_json(
    opts: &ExpOptions,
    max_threads: usize,
    thread_grid: &[usize],
    cells: &[Cell],
    min_mini_speedup: f64,
    max_mini_int8_speedup: f64,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"gemm\",\n");
    out.push_str(&format!("  \"scale\": \"{:?}\",\n", opts.scale).to_lowercase());
    out.push_str(&format!("  \"seed\": {},\n", opts.seed));
    out.push_str(&doduo_bench::stages::HostMeta::detect(opts.scale).json_line());
    out.push_str(&format!("  \"max_threads\": {max_threads},\n"));
    out.push_str(&format!(
        "  \"thread_grid\": [{}],\n",
        thread_grid.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(", ")
    ));
    out.push_str("  \"shapes\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let blocked = c
            .blocked_gflops
            .iter()
            .map(|(t, g)| format!("{{\"threads\": {t}, \"gflops\": {g:.3}}}"))
            .collect::<Vec<_>>()
            .join(", ");
        let int8 = match c.int8_gops {
            Some(g) => format!(
                ", \"int8_gops_1t\": {g:.3}, \"speedup_int8_1t_vs_blocked_1t\": {:.3}",
                g / c.blocked_gflops[0].1
            ),
            None => String::new(),
        };
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"variant\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \
             \"mini_encoder\": {}, \"naive_gflops\": {:.3}, \"blocked\": [{}], \
             \"speedup_blocked_1t_vs_naive\": {:.3}{}}}{}\n",
            c.label,
            c.variant,
            c.m,
            c.k,
            c.n,
            c.mini,
            c.naive_gflops,
            blocked,
            c.blocked_gflops[0].1 / c.naive_gflops,
            int8,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"min_speedup_blocked_1t_vs_naive_mini_shapes\": {min_mini_speedup:.3},\n"
    ));
    out.push_str(&format!(
        "  \"max_speedup_int8_1t_vs_blocked_1t_mini_shapes\": {max_mini_int8_speedup:.3}\n"
    ));
    out.push_str("}\n");
    out
}
