//! Table 5 — Doduo's performance on the 15 most numeric VizNet types,
//! with the measured numeric fraction (`%num`) of each type.
//!
//! Paper: strong F1 on most numeric types (age 98.5, year 98.9, rank 94.5)
//! but weak on `ranking` (33.2) and `capacity` (62.6); average ≈ 86.9,
//! comparable to the overall macro F1 (84.6).

use doduo_bench::report::{pct, Report};
use doduo_bench::{ExpOptions, ModelSpec, World};
use doduo_core::{predict_types, prepare, Task};
use doduo_datagen::NUMERIC_STRESS_TYPES;
use doduo_eval::per_class_prf;
use doduo_table::is_numeric_like;

fn main() {
    let opts = ExpOptions::from_args_for("Table 5: ablation of table serialization components");
    let world = World::bootstrap(opts);
    let splits = world.viznet();
    let cfg = world.train_config();

    let m = world.trained_model(
        "viz-doduo-full",
        &ModelSpec::doduo(),
        &splits,
        &[Task::ColumnType],
        false,
        &cfg,
    );
    let test_p = prepare(&m.model, &splits.test, &world.lm.tokenizer);
    let preds = predict_types(&m.model, &m.store, &test_p.types, doduo_tensor::default_threads());
    let (dp, dg) = preds.single_label();
    let n_types = splits.train.type_vocab.len();
    let per_class = per_class_prf(&dp, &dg, n_types);

    // Measured %num per type over the test columns.
    let mut num_frac = vec![(0usize, 0usize); n_types];
    for at in &splits.test.tables {
        for (c, col) in at.table.columns.iter().enumerate() {
            let ty = at.col_types[c][0] as usize;
            for v in &col.values {
                num_frac[ty].0 += usize::from(is_numeric_like(v));
                num_frac[ty].1 += 1;
            }
        }
    }

    let paper: &[(&str, f64, f64)] = &[
        ("plays", 100.00, 88.55),
        ("rank", 93.01, 94.52),
        ("depth", 92.86, 88.45),
        ("sales", 92.05, 75.13),
        ("year", 91.47, 98.94),
        ("fileSize", 87.84, 88.23),
        ("elevation", 87.39, 92.14),
        ("ranking", 86.88, 33.21),
        ("age", 81.04, 98.53),
        ("birthDate", 67.85, 95.64),
        ("grades", 67.18, 97.68),
        ("weight", 60.41, 97.59),
        ("isbn", 43.77, 96.51),
        ("capacity", 42.06, 62.55),
        ("code", 35.93, 95.43),
    ];

    let mut r = Report::new(
        "Table 5: Doduo on the 15 most numeric VizNet types (paper vs measured)",
        &["type", "%num (ours)", "F1 (ours)", "%num (paper)", "F1 (paper)"],
    );
    let mut measured = Vec::new();
    for &(ty, p_num, p_f1) in paper {
        let id = splits.train.type_vocab.id(ty).expect("type in vocab") as usize;
        let frac = if num_frac[id].1 > 0 {
            100.0 * num_frac[id].0 as f64 / num_frac[id].1 as f64
        } else {
            f64::NAN
        };
        r.row(&[
            ty.into(),
            format!("{frac:.1}"),
            pct(per_class[id].f1),
            format!("{p_num:.1}"),
            format!("{p_f1:.1}"),
        ]);
        measured.push((ty, per_class[id].f1));
    }
    assert_eq!(paper.len(), NUMERIC_STRESS_TYPES.len());

    let avg: f64 = measured.iter().map(|m| m.1).sum::<f64>() / measured.len() as f64;
    let rank_f1 = measured.iter().find(|m| m.0 == "rank").unwrap().1;
    let ranking_f1 = measured.iter().find(|m| m.0 == "ranking").unwrap().1;
    r.check(
        format!("average numeric-type F1 ({}) is not catastrophic (paper: 86.9 avg)", pct(avg)),
        avg > 0.4,
    );
    r.check(
        "`ranking` is the confusable weak class: rank F1 > ranking F1 (paper: 94.5 vs 33.2)",
        rank_f1 > ranking_f1,
    );
    r.print();
    eprintln!("[table5] total elapsed {:?}", world.elapsed());
}
