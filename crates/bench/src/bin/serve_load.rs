//! Closed-loop load bench for the `doduo-served` daemon (not a paper
//! experiment — the online-serving lever of the ROADMAP's production north
//! star).
//!
//! Starts the daemon in-process on an ephemeral port, then drives it over
//! real HTTP (the versioned `/v1` routes) across a grid of **connection
//! topologies × client counts**, and writes per-cell p50/p99 latency,
//! tables/sec, and connection-reuse rate to `BENCH_serve.json`. Four
//! request-mode configurations:
//!
//! * `epoll/eager` — the reactor topology (one event-loop thread owns
//!   every socket, workers see only parsed requests), the current default;
//! * `pool/eager` — the fixed worker pool with readiness probes;
//! * `thread_per_conn` — the pre-pool daemon (one handler thread per
//!   connection), the PR-4 baseline;
//! * `pool/coalesce` — the pool with a 5 ms batching deadline.
//!
//! plus a **stream** mode where each client holds one `/annotate_stream`
//! connection and pipelines tables through it (window of 16), and an
//! **idle_fleet** mode where hundreds-to-thousands of keep-alive
//! connections park for the whole cell (bookending it with one request
//! each on the same connection) while a small active set measures latency
//! — the scenario the epoll rewrite exists for.
//!
//! Clients are closed-loop (send → wait → repeat) on persistent
//! connections; they reconnect only when a request fails, so the reported
//! `conn_reuse_rate` (1 − (connects − clients)/requests, i.e. excluding
//! each client's unavoidable first dial) is a direct measurement of
//! keep-alive doing its job: exactly 1.0 means no connection was ever
//! re-dialed. All daemons run simultaneously and trials are interleaved
//! across topologies (best of two rounds per cell): sequential
//! per-topology runs hand the later one a systematically warmer process,
//! a drift on the same scale as the effect being measured.
//!
//! Run: `cargo run --release -p doduo-bench --bin serve_load -- --scale quick`

use doduo_balance::{BalanceConfig, Balancer, SupervisorConfig};
use doduo_bench::report::Report;
use doduo_bench::{ExpOptions, Scale};
use doduo_serve::BatchConfig;
use doduo_served::bootstrap::synthetic_world;
use doduo_served::http::Client;
use doduo_served::json::table_to_json;
use doduo_served::{
    percentiles, BatchPolicy, Percentiles, ServeConfig, Server, Topology as ServedTopology,
};
use doduo_tensor::default_threads;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Pipelined tables in flight per streaming client.
const STREAM_CLIENT_WINDOW: usize = 16;

/// Cap on how long a shed client honors a server `Retry-After` hint — the
/// hints are in whole seconds, far coarser than bench cell durations.
const MAX_RETRY_AFTER_WAIT: Duration = Duration::from_millis(250);

struct Cell {
    topology: &'static str,
    mode: &'static str,
    workers: usize,
    policy: &'static str,
    max_delay_ms: u64,
    /// Replica processes behind the balancer; `0` = direct daemon.
    replicas: usize,
    clients: usize,
    requests: usize,
    connects: usize,
    /// 503 backpressure responses (each honored via `Retry-After`).
    sheds: usize,
    /// Client-visible failures (non-200, non-503).
    errors: usize,
    /// Replica respawns performed by the supervisor during the cell.
    restarts: u64,
    secs: f64,
    tables_per_sec: f64,
    latency_ms: Percentiles,
}

impl Cell {
    /// Fraction of answered (non-shed) requests that succeeded.
    fn availability(&self) -> f64 {
        if self.requests + self.errors == 0 {
            return 1.0;
        }
        self.requests as f64 / (self.requests + self.errors) as f64
    }
}

/// What one closed-loop trial observed.
#[derive(Clone, Copy)]
struct Trial {
    requests: usize,
    connects: usize,
    sheds: usize,
    errors: usize,
    secs: f64,
    lat: Percentiles,
}

fn to_ms(p: Percentiles) -> Percentiles {
    Percentiles {
        count: p.count,
        mean: p.mean / 1e3,
        p50: p.p50 / 1e3,
        p99: p.p99 / 1e3,
        max: p.max / 1e3,
    }
}

/// One request-mode cell: `clients` closed-loop threads hammering `addr`
/// for `duration` on persistent connections, each cycling through its own
/// slice of the corpus. 503 backpressure is not an error: the client backs
/// off for the server's `Retry-After` hint (capped — the hints are whole
/// seconds) and the shed is counted separately.
fn run_request_cell(addr: &str, bodies: &[String], clients: usize, duration: Duration) -> Trial {
    let stop = AtomicBool::new(false);
    let stop = &stop;
    let connects = AtomicUsize::new(0);
    let connects = &connects;
    let sheds = AtomicUsize::new(0);
    let sheds = &sheds;
    let errors = AtomicUsize::new(0);
    let errors = &errors;
    let t0 = Instant::now();
    let lat_us: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|k| {
                scope.spawn(move || {
                    let connect = || {
                        connects.fetch_add(1, Ordering::Relaxed);
                        Client::connect(addr, Some(Duration::from_secs(30)))
                            .expect("connect to daemon")
                    };
                    let mut c = connect();
                    let mut lats = Vec::new();
                    let mut i = k; // stagger the per-client table streams
                    while !stop.load(Ordering::Relaxed) {
                        let body = &bodies[i % bodies.len()];
                        let r0 = Instant::now();
                        match c.request("POST", "/v1/annotate", body.as_bytes()) {
                            Ok(resp) if resp.status == 200 => {
                                lats.push(r0.elapsed().as_micros() as u64);
                                i += 1;
                            }
                            Ok(resp) if resp.status == 503 => {
                                // Backpressure: honor the Retry-After hint.
                                sheds.fetch_add(1, Ordering::Relaxed);
                                let hint = resp
                                    .retry_after
                                    .map_or(MAX_RETRY_AFTER_WAIT, Duration::from_secs)
                                    .min(MAX_RETRY_AFTER_WAIT);
                                std::thread::sleep(hint);
                            }
                            Ok(_) => {
                                errors.fetch_add(1, Ordering::Relaxed);
                                i += 1;
                            }
                            // A dropped connection (e.g. server-side idle
                            // close) is re-dialed, and counted.
                            Err(_) => c = connect(),
                        }
                    }
                    lats
                })
            })
            .collect();
        // The scope's main thread is the timer.
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().expect("client thread ok")).collect()
    });
    let secs = t0.elapsed().as_secs_f64();
    let all: Vec<u64> = lat_us.into_iter().flatten().collect();
    let p = to_ms(percentiles(&all));
    Trial {
        requests: p.count,
        connects: connects.load(Ordering::Relaxed),
        sheds: sheds.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        secs,
        lat: p,
    }
}

/// One stream-mode cell: each client sends `per_client` tables down a
/// single `/annotate_stream` connection with a pipelining window, and
/// latency is measured per table from send to result arrival.
fn run_stream_cell(addr: &str, bodies: &[String], clients: usize, per_client: usize) -> Trial {
    let t0 = Instant::now();
    let lat_us: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|k| {
                scope.spawn(move || {
                    let mut c = Client::connect(addr, Some(Duration::from_secs(30)))
                        .expect("connect to daemon");
                    c.stream_open("/v1/annotate_stream").expect("open stream");
                    assert_eq!(c.stream_status().expect("status"), 200);
                    let mut sent = 0usize;
                    let mut recvd = 0usize;
                    let mut send_at = vec![Instant::now(); per_client];
                    let mut lats = Vec::with_capacity(per_client);
                    while recvd < per_client {
                        while sent < per_client && sent - recvd < STREAM_CLIENT_WINDOW {
                            let mut doc = bodies[(k + sent) % bodies.len()].clone();
                            doc.push('\n');
                            send_at[sent] = Instant::now();
                            c.stream_send(doc.as_bytes()).expect("send table");
                            sent += 1;
                            if sent == per_client {
                                c.stream_finish().expect("finish upload");
                            }
                        }
                        let line = c.stream_next_line().expect("read").expect("result per table");
                        assert!(
                            line.starts_with("{\"types\""),
                            "stream answered with an error: {line}"
                        );
                        lats.push(send_at[recvd].elapsed().as_micros() as u64);
                        recvd += 1;
                    }
                    assert_eq!(c.stream_next_line().expect("eof"), None, "stream ends cleanly");
                    lats
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("stream client ok")).collect()
    });
    let secs = t0.elapsed().as_secs_f64();
    let all: Vec<u64> = lat_us.into_iter().flatten().collect();
    let p = to_ms(percentiles(&all));
    Trial { requests: p.count, connects: clients, sheds: 0, errors: 0, secs, lat: p }
}

/// One idle-fleet cell: `fleet` keep-alive connections each send a single
/// request, park untouched for the whole cell, then send one more request
/// down the *same* connection — proving the daemon holds a large mostly-
/// idle fleet without dropping anyone — while `active` closed-loop clients
/// measure latency through the noise. The reported percentiles cover the
/// active clients only (the fleet's two bookend requests are counted in
/// `requests`/`connects` but would drown the tail otherwise); any fleet
/// re-dial or non-200 counts as an error.
fn run_idle_fleet_cell(
    addr: &str,
    bodies: &[String],
    fleet: usize,
    active: usize,
    duration: Duration,
) -> Trial {
    let stop = AtomicBool::new(false);
    let stop = &stop;
    let parked = AtomicUsize::new(0);
    let parked = &parked;
    let errors = AtomicUsize::new(0);
    let errors = &errors;
    let t0 = Instant::now();
    let (mid, fleet_requests) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..fleet)
            .map(|k| {
                scope.spawn(move || {
                    let mut c = Client::connect(addr, Some(Duration::from_secs(30)))
                        .expect("connect fleet member");
                    let body = &bodies[k % bodies.len()];
                    let mut answered = 0usize;
                    for phase in 0..2 {
                        match c.request("POST", "/v1/annotate", body.as_bytes()) {
                            Ok(resp) if resp.status == 200 => answered += 1,
                            _ => {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        if phase == 0 {
                            parked.fetch_add(1, Ordering::Relaxed);
                            while !stop.load(Ordering::Relaxed) {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                        }
                    }
                    answered
                })
            })
            .collect();
        // Only measure once the whole fleet is parked: the point is latency
        // *with* the idle connections resident, not while they dial in.
        while parked.load(Ordering::Relaxed) < fleet {
            std::thread::sleep(Duration::from_millis(5));
        }
        let mid = run_request_cell(addr, bodies, active, duration);
        stop.store(true, Ordering::Relaxed);
        let fleet_requests: usize =
            handles.into_iter().map(|h| h.join().expect("fleet member ok")).sum();
        (mid, fleet_requests)
    });
    Trial {
        requests: mid.requests + fleet_requests,
        connects: mid.connects + fleet,
        sheds: mid.sheds,
        errors: mid.errors + errors.load(Ordering::Relaxed),
        secs: t0.elapsed().as_secs_f64(),
        lat: mid.lat,
    }
}

struct TopoSpec {
    name: &'static str,
    kind: ServedTopology,
    workers: usize,
    policy: &'static str,
    delay_ms: u64,
}

fn main() {
    let opts = ExpOptions::from_args_for(
        "Serving load bench: daemon topologies under concurrent clients, writes BENCH_serve.json",
    );
    let started = Instant::now();
    let quick = opts.scale == Scale::Quick;
    let world = synthetic_world(quick, opts.seed);
    let bodies: Vec<String> = world.tables.iter().map(table_to_json).collect();
    let n_threads = default_threads();
    eprintln!(
        "[serve_load] world ready: {} tables, {} cores, setup {:?}",
        bodies.len(),
        n_threads,
        started.elapsed()
    );

    let (cell_secs, client_grid): (f64, Vec<usize>) =
        if quick { (1.0, vec![1, 4, 16, 64]) } else { (2.0, vec![1, 2, 4, 8, 16, 32, 64]) };
    let stream_clients: Vec<usize> = if quick { vec![1, 4, 16] } else { vec![1, 4, 16, 64] };
    let stream_per_client = if quick { 48 } else { 128 };
    let pool_workers = ServeConfig::default().workers;
    let topologies = [
        TopoSpec {
            name: "epoll",
            kind: ServedTopology::Epoll,
            workers: pool_workers,
            policy: "eager",
            delay_ms: 0,
        },
        TopoSpec {
            name: "pool",
            kind: ServedTopology::Pool,
            workers: pool_workers,
            policy: "eager",
            delay_ms: 0,
        },
        TopoSpec {
            name: "thread_per_conn",
            kind: ServedTopology::ThreadPerConn,
            workers: 0,
            policy: "eager",
            delay_ms: 0,
        },
        TopoSpec {
            name: "pool",
            kind: ServedTopology::Pool,
            workers: pool_workers,
            policy: "coalesce",
            delay_ms: 5,
        },
    ];

    // All four daemons run simultaneously (each on its own ephemeral
    // port) and trials are interleaved across topologies at every client
    // count, taking the best of two rounds per cell. Sequential
    // per-topology runs would hand the later topology a systematically
    // warmer process (CPU frequency, allocator, page cache) — on a 1-core
    // container that drift is the same magnitude as the effect being
    // measured.
    let servers: Vec<Server> = topologies
        .iter()
        .map(|topo| {
            let cfg = ServeConfig {
                addr: "127.0.0.1:0".into(),
                topology: topo.kind,
                policy: BatchPolicy {
                    max_delay: Duration::from_millis(topo.delay_ms),
                    ..BatchPolicy::default()
                },
                engine: BatchConfig { threads: n_threads, ..BatchConfig::default() },
                workers: topo.workers,
                // Room for the 1024-connection idle fleet plus actives.
                max_connections: 2048,
                ..ServeConfig::default()
            };
            Server::bind(cfg).expect("bind ephemeral port")
        })
        .collect();
    let addrs: Vec<String> = servers.iter().map(|s| s.addr().to_string()).collect();

    let mut cells: Vec<Cell> = Vec::new();
    std::thread::scope(|scope| {
        let runners: Vec<_> = servers
            .iter()
            .map(|server| {
                let bundle = world.bundle.clone();
                scope.spawn(move || server.run(bundle))
            })
            .collect();
        // Warm-up pass per daemon: fill its tokenization cache, fault pages.
        for addr in &addrs {
            let _ = run_request_cell(addr, &bodies, 2, Duration::from_secs_f64(cell_secs / 2.0));
        }
        for &clients in &client_grid {
            let mut best: Vec<Option<Trial>> = vec![None; topologies.len()];
            for _round in 0..2 {
                for (t, addr) in addrs.iter().enumerate() {
                    let trial = run_request_cell(
                        addr,
                        &bodies,
                        clients,
                        Duration::from_secs_f64(cell_secs),
                    );
                    let better = best[t].as_ref().is_none_or(|b| {
                        trial.requests as f64 / trial.secs > b.requests as f64 / b.secs
                    });
                    if better {
                        best[t] = Some(trial);
                    }
                }
            }
            for (topo, trial) in topologies.iter().zip(best) {
                let t = trial.expect("two rounds ran");
                let cell = Cell {
                    topology: topo.name,
                    mode: "request",
                    workers: topo.workers,
                    policy: topo.policy,
                    max_delay_ms: topo.delay_ms,
                    replicas: 0,
                    clients,
                    requests: t.requests,
                    connects: t.connects,
                    sheds: t.sheds,
                    errors: t.errors,
                    restarts: 0,
                    secs: t.secs,
                    tables_per_sec: t.requests as f64 / t.secs,
                    latency_ms: t.lat,
                };
                eprintln!(
                    "[serve_load] {:>15}/{:<8} clients {clients:>2}: {:>7.1} tables/sec, \
                     p50 {:>6.2} ms, p99 {:>7.2} ms, reuse {:.3} ({} reqs)",
                    topo.name,
                    topo.policy,
                    cell.tables_per_sec,
                    cell.latency_ms.p50,
                    cell.latency_ms.p99,
                    reuse_rate(&cell),
                    t.requests
                );
                cells.push(cell);
            }
        }
        // Stream mode rides the default daemon (topology 0: epoll/eager).
        let (stream_topo, stream_addr) = (&topologies[0], &addrs[0]);
        for &clients in &stream_clients {
            let t = (0..2)
                .map(|_| run_stream_cell(stream_addr, &bodies, clients, stream_per_client))
                .max_by(|a, b| {
                    (a.requests as f64 / a.secs).total_cmp(&(b.requests as f64 / b.secs))
                })
                .expect("two trials");
            let cell = Cell {
                topology: stream_topo.name,
                mode: "stream",
                workers: stream_topo.workers,
                policy: stream_topo.policy,
                max_delay_ms: stream_topo.delay_ms,
                replicas: 0,
                clients,
                requests: t.requests,
                connects: t.connects,
                sheds: t.sheds,
                errors: t.errors,
                restarts: 0,
                secs: t.secs,
                tables_per_sec: t.requests as f64 / t.secs,
                latency_ms: t.lat,
            };
            eprintln!(
                "[serve_load] {:>15}/{:<8} clients {clients:>2}: {:>7.1} tables/sec, \
                 p50 {:>6.2} ms, p99 {:>7.2} ms ({} tables)",
                "stream",
                stream_topo.policy,
                cell.tables_per_sec,
                cell.latency_ms.p50,
                cell.latency_ms.p99,
                t.requests
            );
            cells.push(cell);
        }
        // High-connection idle fleets: the epoll reactor at 256 and 1024
        // parked keep-alive connections, with the probing pool at 256 as
        // the A/B comparison (the pool's per-pass readiness probes are
        // exactly the churn the reactor eliminates).
        let idle_active = 16;
        for &(t, fleet) in &[(0usize, 256usize), (0, 1024), (1, 256)] {
            let topo = &topologies[t];
            let trial = run_idle_fleet_cell(
                &addrs[t],
                &bodies,
                fleet,
                idle_active,
                Duration::from_secs_f64(cell_secs),
            );
            let cell = Cell {
                topology: topo.name,
                mode: "idle_fleet",
                workers: topo.workers,
                policy: topo.policy,
                max_delay_ms: topo.delay_ms,
                replicas: 0,
                clients: fleet + idle_active,
                requests: trial.requests,
                connects: trial.connects,
                sheds: trial.sheds,
                errors: trial.errors,
                restarts: 0,
                secs: trial.secs,
                tables_per_sec: trial.requests as f64 / trial.secs,
                latency_ms: trial.lat,
            };
            eprintln!(
                "[serve_load] {:>15}/{:<8} fleet {fleet:>4}+{idle_active}: {:>7.1} tables/sec, \
                 p50 {:>6.2} ms, p99 {:>7.2} ms, reuse {:.3}, {} errors",
                topo.name,
                "idle",
                cell.tables_per_sec,
                cell.latency_ms.p50,
                cell.latency_ms.p99,
                reuse_rate(&cell),
                cell.errors
            );
            cells.push(cell);
        }
        for server in &servers {
            server.handle().shutdown();
        }
        for runner in runners {
            runner.join().expect("daemon thread exits");
        }
    });

    // ------------------------------------------------------------------
    // Replicated serving: real replica processes behind the in-process
    // balancer (doduo-balance as a library). Runs after the direct-daemon
    // grid so the replica fleets don't contend with it for cores.
    // ------------------------------------------------------------------
    let served_bin = served_binary();
    let scratch = std::env::temp_dir().join(format!("serve_load-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("create scratch dir");
    let ckpt = scratch.join("bundle.ckpt");
    world.bundle.save_to(ckpt.to_str().expect("utf8 path")).expect("save checkpoint");

    let replicated_clients = if quick { 8 } else { 16 };
    for &replicas in &[1usize, 2, 4] {
        let (trial, restarts) = run_balanced_cell(
            &served_bin,
            &ckpt,
            &scratch,
            &bodies,
            replicas,
            &[],
            replicated_clients,
            Duration::from_secs_f64(cell_secs),
        );
        let cell = Cell {
            topology: "replicated",
            mode: "request",
            workers: 2,
            policy: "eager",
            max_delay_ms: 0,
            replicas,
            clients: replicated_clients,
            requests: trial.requests,
            connects: trial.connects,
            sheds: trial.sheds,
            errors: trial.errors,
            restarts,
            secs: trial.secs,
            tables_per_sec: trial.requests as f64 / trial.secs,
            latency_ms: trial.lat,
        };
        eprintln!(
            "[serve_load] {:>15}/{:<8} clients {replicated_clients:>2}: {:>7.1} tables/sec, \
             p50 {:>6.2} ms, p99 {:>7.2} ms ({} reqs, {} replicas)",
            "replicated",
            "eager",
            cell.tables_per_sec,
            cell.latency_ms.p50,
            cell.latency_ms.p99,
            trial.requests,
            replicas,
        );
        cells.push(cell);
    }

    // The chaos availability cell: three replicas, one crash-looping under
    // deterministic fault injection. Availability must stay flat at 1.0 —
    // crashes strike before any response byte, so failover hides them.
    let chaos_clients = if quick { 4 } else { 8 };
    let (trial, restarts) = run_balanced_cell(
        &served_bin,
        &ckpt,
        &scratch,
        &bodies,
        3,
        &[(0, "crash_after=25,seed=7")],
        chaos_clients,
        Duration::from_secs_f64(cell_secs * 3.0),
    );
    let chaos_cell = Cell {
        topology: "replicated",
        mode: "chaos",
        workers: 2,
        policy: "eager",
        max_delay_ms: 0,
        replicas: 3,
        clients: chaos_clients,
        requests: trial.requests,
        connects: trial.connects,
        sheds: trial.sheds,
        errors: trial.errors,
        restarts,
        secs: trial.secs,
        tables_per_sec: trial.requests as f64 / trial.secs,
        latency_ms: trial.lat,
    };
    eprintln!(
        "[serve_load] {:>15}/{:<8} clients {chaos_clients:>2}: {:>7.1} tables/sec, \
         availability {:.4}, {} restarts, {} sheds",
        "replicated",
        "chaos",
        chaos_cell.tables_per_sec,
        chaos_cell.availability(),
        restarts,
        trial.sheds,
    );
    cells.push(chaos_cell);
    let _ = std::fs::remove_dir_all(&scratch);

    let mut r = Report::new(
        "Online serving load (doduo-served, closed-loop clients)",
        &[
            "topology",
            "mode",
            "policy",
            "repl",
            "clients",
            "tables/sec",
            "p50 ms",
            "p99 ms",
            "reuse",
            "avail",
        ],
    );
    for c in &cells {
        r.row(&[
            c.topology.to_string(),
            c.mode.to_string(),
            c.policy.to_string(),
            c.replicas.to_string(),
            c.clients.to_string(),
            format!("{:.1}", c.tables_per_sec),
            format!("{:.2}", c.latency_ms.p50),
            format!("{:.2}", c.latency_ms.p99),
            format!("{:.3}", reuse_rate(c)),
            format!("{:.4}", c.availability()),
        ]);
    }
    r.check("every cell answered requests", cells.iter().all(|c| c.requests > 0));
    // Fault tolerance: under deterministic crash injection the replicated
    // fleet must stay fully available (crashes strike before any response
    // byte, so the balancer's failover hides every one), the supervisor
    // must actually have healed the crash-looping replica, and no direct
    // cell may report client-visible errors either.
    let chaos = cells.iter().find(|c| c.mode == "chaos").expect("chaos cell ran");
    r.check(
        format!(
            "chaos cell availability is flat at 1.0 ({:.4}, {} errors, {} sheds)",
            chaos.availability(),
            chaos.errors,
            chaos.sheds
        )
        .as_str(),
        chaos.errors == 0,
    );
    r.check(
        format!("chaos cell healed crashes ({} restarts)", chaos.restarts).as_str(),
        chaos.restarts >= 1,
    );
    r.check("no cell saw client-visible errors", cells.iter().all(|c| c.errors == 0));
    let tps = |topology: &str, mode: &str, policy: &str, clients: usize| {
        cells
            .iter()
            .find(|c| {
                c.topology == topology
                    && c.mode == mode
                    && c.policy == policy
                    && c.clients == clients
            })
            .map(|c| c.tables_per_sec)
            .unwrap_or(0.0)
    };
    // The PR-5 acceptance bar: the pool with keep-alive must sustain at
    // least the thread-per-connection eager baseline at 16 clients.
    let baseline = tps("thread_per_conn", "request", "eager", 16);
    let pooled = tps("pool", "request", "eager", 16);
    r.check(
        format!(
            "pool sustains thread-per-conn eager at 16 clients ({pooled:.1} vs {baseline:.1} t/s)"
        )
        .as_str(),
        pooled >= baseline * 0.95,
    );
    // The reactor's acceptance bar: at 64 clients the epoll loop beats the
    // probing pool on both throughput and tail latency (this is where the
    // pool's per-pass readiness probes start costing).
    let p99 = |topology: &str, mode: &str, clients: usize| {
        cells
            .iter()
            .find(|c| c.topology == topology && c.mode == mode && c.clients == clients)
            .map(|c| c.latency_ms.p99)
            .unwrap_or(f64::INFINITY)
    };
    let (epoll64, pool64) =
        (tps("epoll", "request", "eager", 64), tps("pool", "request", "eager", 64));
    r.check(
        format!("epoll beats pool on tables/sec at 64 clients ({epoll64:.1} vs {pool64:.1} t/s)")
            .as_str(),
        epoll64 >= pool64,
    );
    let (ep99, pp99) = (p99("epoll", "request", 64), p99("pool", "request", 64));
    r.check(
        format!("epoll beats pool on p99 at 64 clients ({ep99:.2} vs {pp99:.2} ms)").as_str(),
        ep99 <= pp99,
    );
    // `connects == clients` means every client kept its one connection for
    // the whole cell — keep-alive never dropped it. This covers the idle
    // fleets too: a reaped parked connection would show up as a fleet
    // error or an extra dial.
    r.check(
        "keep-alive holds connections (no re-dials in request or idle_fleet cells)",
        cells
            .iter()
            .filter(|c| c.mode == "request" || c.mode == "idle_fleet")
            .all(|c| c.connects == c.clients),
    );
    // Flat tail under a 4x larger parked fleet: the reactor's per-turn work
    // scales with *ready* connections, not resident ones.
    let (idle256, idle1024) =
        (p99("epoll", "idle_fleet", 256 + 16), p99("epoll", "idle_fleet", 1024 + 16));
    r.check(
        format!(
            "epoll p99 stays flat from 256 to 1024 parked conns ({idle256:.2} -> {idle1024:.2} ms)"
        )
        .as_str(),
        idle1024 <= idle256 * 3.0 + 10.0,
    );
    r.print();

    let json = render_json(&opts, bodies.len(), n_threads, &cells);
    std::fs::write("BENCH_serve.json", json).expect("write BENCH_serve.json");
    eprintln!("[serve_load] wrote BENCH_serve.json, total elapsed {:?}", started.elapsed());
}

/// Locates the `doduo-served` binary the replica fleets spawn:
/// `DODUO_SERVED_BIN`, then a sibling of this executable, then a cargo
/// build of it (offline workspace build) as a last resort.
fn served_binary() -> PathBuf {
    if let Ok(p) = std::env::var("DODUO_SERVED_BIN") {
        return PathBuf::from(p);
    }
    let me = std::env::current_exe().expect("current_exe");
    let dir = me.parent().expect("bin dir").to_path_buf();
    let sibling = dir.join(format!("doduo-served{}", std::env::consts::EXE_SUFFIX));
    if sibling.exists() {
        return sibling;
    }
    eprintln!("[serve_load] building doduo-served for the replicated cells ...");
    let release = dir.ends_with("release");
    let mut cmd = std::process::Command::new("cargo");
    cmd.args(["build", "-p", "doduo-served"]);
    if release {
        cmd.arg("--release");
    }
    let built = cmd.status().map(|s| s.success()).unwrap_or(false);
    assert!(
        built && sibling.exists(),
        "cannot find or build a doduo-served binary for the replicated cells; \
         set DODUO_SERVED_BIN or `cargo build --release -p doduo-served` first"
    );
    sibling
}

/// One replicated cell: `replicas` real daemon processes (same checkpoint)
/// behind an in-process balancer, driven by the closed-loop clients.
/// `chaos` assigns per-replica fault specs. Returns the trial plus the
/// supervisor's restart count.
#[allow(clippy::too_many_arguments)]
fn run_balanced_cell(
    served_bin: &std::path::Path,
    ckpt: &std::path::Path,
    port_dir: &std::path::Path,
    bodies: &[String],
    replicas: usize,
    chaos: &[(usize, &str)],
    clients: usize,
    duration: Duration,
) -> (Trial, u64) {
    let mut per_replica_args: Vec<Vec<String>> = vec![Vec::new(); replicas];
    for (idx, spec) in chaos {
        per_replica_args[*idx].extend(["--chaos".to_string(), (*spec).to_string()]);
    }
    let sup = SupervisorConfig {
        common_args: vec![
            "--checkpoint".into(),
            ckpt.to_str().expect("utf8").into(),
            "--workers".into(),
            "2".into(),
            "--threads".into(),
            "1".into(),
        ],
        per_replica_args,
        port_dir: port_dir.to_path_buf(),
        seed: 7,
        ..SupervisorConfig::new(served_bin.to_path_buf(), replicas)
    };
    let cfg = BalanceConfig {
        addr: "127.0.0.1:0".into(),
        supervisor: Some(sup),
        seed: 7,
        ..BalanceConfig::default()
    };
    let balancer = Balancer::bind(cfg).expect("bind balancer");
    let addr = balancer.addr().to_string();
    let handle = balancer.handle();
    std::thread::scope(|scope| {
        let runner = scope.spawn(|| balancer.run());
        // Wait for the fleet to come up before opening the floodgates.
        let deadline = Instant::now() + Duration::from_secs(120);
        while handle.ready_replicas() < replicas {
            assert!(Instant::now() < deadline, "replica fleet never became ready");
            std::thread::sleep(Duration::from_millis(25));
        }
        let trial = run_request_cell(&addr, bodies, clients, duration);
        let restarts = handle.total_restarts();
        handle.shutdown();
        runner.join().expect("balancer thread").expect("balancer ran cleanly");
        (trial, restarts)
    })
}

/// Fraction of requests that rode an already-open connection, not counting
/// each client's unavoidable first dial: `1 − (connects − clients) /
/// requests`. Exactly 1.0 means keep-alive never dropped a connection
/// (zero re-dials); anything lower measures reconnect churn.
fn reuse_rate(c: &Cell) -> f64 {
    if c.requests == 0 {
        return 0.0;
    }
    1.0 - (c.connects.saturating_sub(c.clients) as f64 / c.requests as f64).min(1.0)
}

fn render_json(
    opts: &ExpOptions,
    corpus_tables: usize,
    n_threads: usize,
    cells: &[Cell],
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"serve\",\n");
    out.push_str(&format!("  \"scale\": \"{:?}\",\n", opts.scale).to_lowercase());
    out.push_str(&format!("  \"seed\": {},\n", opts.seed));
    out.push_str(&doduo_bench::stages::HostMeta::detect(opts.scale).json_line());
    out.push_str(&format!("  \"corpus_tables\": {corpus_tables},\n"));
    out.push_str(&format!("  \"max_threads\": {n_threads},\n"));
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"topology\": \"{}\", \"mode\": \"{}\", \"workers\": {}, \"policy\": \"{}\", \
             \"max_delay_ms\": {}, \"replicas\": {}, \"clients\": {}, \"requests\": {}, \
             \"connects\": {}, \"sheds\": {}, \"errors\": {}, \"restarts\": {}, \
             \"availability\": {:.4}, \"conn_reuse_rate\": {:.4}, \"secs\": {:.3}, \
             \"tables_per_sec\": {:.3}, \
             \"latency_ms\": {{\"mean\": {:.3}, \"p50\": {:.3}, \"p99\": {:.3}, \
             \"max\": {:.3}}}}}{}\n",
            c.topology,
            c.mode,
            c.workers,
            c.policy,
            c.max_delay_ms,
            c.replicas,
            c.clients,
            c.requests,
            c.connects,
            c.sheds,
            c.errors,
            c.restarts,
            c.availability(),
            reuse_rate(c),
            c.secs,
            c.tables_per_sec,
            c.latency_ms.mean,
            c.latency_ms.p50,
            c.latency_ms.p99,
            c.latency_ms.max,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}
