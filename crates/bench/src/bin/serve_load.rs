//! Closed-loop load bench for the `doduo-served` daemon (not a paper
//! experiment — the online-serving lever of the ROADMAP's production north
//! star).
//!
//! Starts the daemon in-process on an ephemeral port, then drives it over
//! real HTTP across a grid of **connection topologies × client counts**,
//! and writes per-cell p50/p99 latency, tables/sec, and connection-reuse
//! rate to `BENCH_serve.json`. Three request-mode configurations:
//!
//! * `thread_per_conn` — the pre-pool daemon (one handler thread per
//!   connection), the PR-4 baseline;
//! * `pool/eager` — the fixed worker pool with keep-alive;
//! * `pool/coalesce` — the pool with a 5 ms batching deadline.
//!
//! plus a **stream** mode where each client holds one `/annotate_stream`
//! connection and pipelines tables through it (window of 16), measuring
//! per-table completion latency — the protocol's answer to "one client,
//! many tables".
//!
//! Clients are closed-loop (send → wait → repeat) on persistent
//! connections; they reconnect only when a request fails, so the reported
//! `conn_reuse_rate` (1 − connects/requests) is a direct measurement of
//! keep-alive doing its job. All daemons run simultaneously and trials are
//! interleaved across topologies (best of two rounds per cell): sequential
//! per-topology runs hand the later one a systematically warmer process,
//! a drift on the same scale as the effect being measured.
//!
//! Run: `cargo run --release -p doduo-bench --bin serve_load -- --scale quick`

use doduo_bench::report::Report;
use doduo_bench::{ExpOptions, Scale};
use doduo_serve::BatchConfig;
use doduo_served::bootstrap::synthetic_world;
use doduo_served::http::Client;
use doduo_served::json::table_to_json;
use doduo_served::{percentiles, BatchPolicy, Percentiles, ServeConfig, Server};
use doduo_tensor::default_threads;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Pipelined tables in flight per streaming client.
const STREAM_CLIENT_WINDOW: usize = 16;

struct Cell {
    topology: &'static str,
    mode: &'static str,
    workers: usize,
    policy: &'static str,
    max_delay_ms: u64,
    clients: usize,
    requests: usize,
    connects: usize,
    secs: f64,
    tables_per_sec: f64,
    latency_ms: Percentiles,
}

fn to_ms(p: Percentiles) -> Percentiles {
    Percentiles {
        count: p.count,
        mean: p.mean / 1e3,
        p50: p.p50 / 1e3,
        p99: p.p99 / 1e3,
        max: p.max / 1e3,
    }
}

/// One request-mode cell: `clients` closed-loop threads hammering `addr`
/// for `duration` on persistent connections, each cycling through its own
/// slice of the corpus. Returns (requests, connects, secs, latency).
fn run_request_cell(
    addr: &str,
    bodies: &[String],
    clients: usize,
    duration: Duration,
) -> (usize, usize, f64, Percentiles) {
    let stop = AtomicBool::new(false);
    let stop = &stop;
    let connects = AtomicUsize::new(0);
    let connects = &connects;
    let t0 = Instant::now();
    let lat_us: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|k| {
                scope.spawn(move || {
                    let connect = || {
                        connects.fetch_add(1, Ordering::Relaxed);
                        Client::connect(addr, Some(Duration::from_secs(30)))
                            .expect("connect to daemon")
                    };
                    let mut c = connect();
                    let mut lats = Vec::new();
                    let mut i = k; // stagger the per-client table streams
                    while !stop.load(Ordering::Relaxed) {
                        let body = &bodies[i % bodies.len()];
                        let r0 = Instant::now();
                        match c.request("POST", "/annotate", body.as_bytes()) {
                            Ok(resp) => {
                                assert_eq!(resp.status, 200, "daemon must answer 200 under load");
                                lats.push(r0.elapsed().as_micros() as u64);
                                i += 1;
                            }
                            // A dropped connection (e.g. server-side idle
                            // close) is re-dialed, and counted.
                            Err(_) => c = connect(),
                        }
                    }
                    lats
                })
            })
            .collect();
        // The scope's main thread is the timer.
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().expect("client thread ok")).collect()
    });
    let secs = t0.elapsed().as_secs_f64();
    let all: Vec<u64> = lat_us.into_iter().flatten().collect();
    let p = to_ms(percentiles(&all));
    (p.count, connects.load(Ordering::Relaxed), secs, p)
}

/// One stream-mode cell: each client sends `per_client` tables down a
/// single `/annotate_stream` connection with a pipelining window, and
/// latency is measured per table from send to result arrival.
fn run_stream_cell(
    addr: &str,
    bodies: &[String],
    clients: usize,
    per_client: usize,
) -> (usize, usize, f64, Percentiles) {
    let t0 = Instant::now();
    let lat_us: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|k| {
                scope.spawn(move || {
                    let mut c = Client::connect(addr, Some(Duration::from_secs(30)))
                        .expect("connect to daemon");
                    c.stream_open("/annotate_stream").expect("open stream");
                    assert_eq!(c.stream_status().expect("status"), 200);
                    let mut sent = 0usize;
                    let mut recvd = 0usize;
                    let mut send_at = vec![Instant::now(); per_client];
                    let mut lats = Vec::with_capacity(per_client);
                    while recvd < per_client {
                        while sent < per_client && sent - recvd < STREAM_CLIENT_WINDOW {
                            let mut doc = bodies[(k + sent) % bodies.len()].clone();
                            doc.push('\n');
                            send_at[sent] = Instant::now();
                            c.stream_send(doc.as_bytes()).expect("send table");
                            sent += 1;
                            if sent == per_client {
                                c.stream_finish().expect("finish upload");
                            }
                        }
                        let line = c.stream_next_line().expect("read").expect("result per table");
                        assert!(
                            line.starts_with("{\"types\""),
                            "stream answered with an error: {line}"
                        );
                        lats.push(send_at[recvd].elapsed().as_micros() as u64);
                        recvd += 1;
                    }
                    assert_eq!(c.stream_next_line().expect("eof"), None, "stream ends cleanly");
                    lats
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("stream client ok")).collect()
    });
    let secs = t0.elapsed().as_secs_f64();
    let all: Vec<u64> = lat_us.into_iter().flatten().collect();
    let p = to_ms(percentiles(&all));
    (p.count, clients, secs, p)
}

struct Topology {
    name: &'static str,
    workers: usize,
    policy: &'static str,
    delay_ms: u64,
}

fn main() {
    let opts = ExpOptions::from_args_for(
        "Serving load bench: daemon topologies under concurrent clients, writes BENCH_serve.json",
    );
    let started = Instant::now();
    let quick = opts.scale == Scale::Quick;
    let world = synthetic_world(quick, opts.seed);
    let bodies: Vec<String> = world.tables.iter().map(table_to_json).collect();
    let n_threads = default_threads();
    eprintln!(
        "[serve_load] world ready: {} tables, {} cores, setup {:?}",
        bodies.len(),
        n_threads,
        started.elapsed()
    );

    let (cell_secs, client_grid): (f64, Vec<usize>) =
        if quick { (1.0, vec![1, 4, 16, 64]) } else { (2.0, vec![1, 2, 4, 8, 16, 32, 64]) };
    let stream_clients: Vec<usize> = if quick { vec![1, 4, 16] } else { vec![1, 4, 16, 64] };
    let stream_per_client = if quick { 48 } else { 128 };
    let pool_workers = ServeConfig::default().workers;
    let topologies = [
        Topology { name: "pool", workers: pool_workers, policy: "eager", delay_ms: 0 },
        Topology { name: "thread_per_conn", workers: 0, policy: "eager", delay_ms: 0 },
        Topology { name: "pool", workers: pool_workers, policy: "coalesce", delay_ms: 5 },
    ];

    // All three daemons run simultaneously (each on its own ephemeral
    // port) and trials are interleaved across topologies at every client
    // count, taking the best of two rounds per cell. Sequential
    // per-topology runs would hand the later topology a systematically
    // warmer process (CPU frequency, allocator, page cache) — on a 1-core
    // container that drift is the same magnitude as the effect being
    // measured.
    let servers: Vec<Server> = topologies
        .iter()
        .map(|topo| {
            let cfg = ServeConfig {
                addr: "127.0.0.1:0".into(),
                policy: BatchPolicy {
                    max_delay: Duration::from_millis(topo.delay_ms),
                    ..BatchPolicy::default()
                },
                engine: BatchConfig { threads: n_threads, ..BatchConfig::default() },
                workers: topo.workers,
                ..ServeConfig::default()
            };
            Server::bind(cfg).expect("bind ephemeral port")
        })
        .collect();
    let addrs: Vec<String> = servers.iter().map(|s| s.addr().to_string()).collect();

    let mut cells: Vec<Cell> = Vec::new();
    std::thread::scope(|scope| {
        let runners: Vec<_> = servers
            .iter()
            .map(|server| {
                let bundle = &world.bundle;
                scope.spawn(move || server.run(bundle))
            })
            .collect();
        // Warm-up pass per daemon: fill its tokenization cache, fault pages.
        for addr in &addrs {
            let _ = run_request_cell(addr, &bodies, 2, Duration::from_secs_f64(cell_secs / 2.0));
        }
        for &clients in &client_grid {
            let mut best: Vec<Option<(usize, usize, f64, Percentiles)>> =
                vec![None; topologies.len()];
            for _round in 0..2 {
                for (t, addr) in addrs.iter().enumerate() {
                    let trial = run_request_cell(
                        addr,
                        &bodies,
                        clients,
                        Duration::from_secs_f64(cell_secs),
                    );
                    let better = best[t]
                        .as_ref()
                        .is_none_or(|b| trial.0 as f64 / trial.2 > b.0 as f64 / b.2);
                    if better {
                        best[t] = Some(trial);
                    }
                }
            }
            for (topo, trial) in topologies.iter().zip(best) {
                let (requests, connects, secs, lat) = trial.expect("two rounds ran");
                let cell = Cell {
                    topology: topo.name,
                    mode: "request",
                    workers: topo.workers,
                    policy: topo.policy,
                    max_delay_ms: topo.delay_ms,
                    clients,
                    requests,
                    connects,
                    secs,
                    tables_per_sec: requests as f64 / secs,
                    latency_ms: lat,
                };
                eprintln!(
                    "[serve_load] {:>15}/{:<8} clients {clients:>2}: {:>7.1} tables/sec, \
                     p50 {:>6.2} ms, p99 {:>7.2} ms, reuse {:.3} ({} reqs)",
                    topo.name,
                    topo.policy,
                    cell.tables_per_sec,
                    cell.latency_ms.p50,
                    cell.latency_ms.p99,
                    reuse_rate(&cell),
                    requests
                );
                cells.push(cell);
            }
        }
        // Stream mode rides the eager pool daemon (topology 0).
        let (stream_topo, stream_addr) = (&topologies[0], &addrs[0]);
        for &clients in &stream_clients {
            let (requests, connects, secs, lat) = (0..2)
                .map(|_| run_stream_cell(stream_addr, &bodies, clients, stream_per_client))
                .max_by(|a, b| (a.0 as f64 / a.2).total_cmp(&(b.0 as f64 / b.2)))
                .expect("two trials");
            let cell = Cell {
                topology: stream_topo.name,
                mode: "stream",
                workers: stream_topo.workers,
                policy: stream_topo.policy,
                max_delay_ms: stream_topo.delay_ms,
                clients,
                requests,
                connects,
                secs,
                tables_per_sec: requests as f64 / secs,
                latency_ms: lat,
            };
            eprintln!(
                "[serve_load] {:>15}/{:<8} clients {clients:>2}: {:>7.1} tables/sec, \
                 p50 {:>6.2} ms, p99 {:>7.2} ms ({} tables)",
                "stream",
                stream_topo.policy,
                cell.tables_per_sec,
                cell.latency_ms.p50,
                cell.latency_ms.p99,
                requests
            );
            cells.push(cell);
        }
        for server in &servers {
            server.handle().shutdown();
        }
        for runner in runners {
            runner.join().expect("daemon thread exits");
        }
    });

    let mut r = Report::new(
        "Online serving load (doduo-served, closed-loop clients)",
        &["topology", "mode", "policy", "clients", "tables/sec", "p50 ms", "p99 ms", "reuse"],
    );
    for c in &cells {
        r.row(&[
            c.topology.to_string(),
            c.mode.to_string(),
            c.policy.to_string(),
            c.clients.to_string(),
            format!("{:.1}", c.tables_per_sec),
            format!("{:.2}", c.latency_ms.p50),
            format!("{:.2}", c.latency_ms.p99),
            format!("{:.3}", reuse_rate(c)),
        ]);
    }
    r.check("every cell answered requests", cells.iter().all(|c| c.requests > 0));
    let tps = |topology: &str, mode: &str, policy: &str, clients: usize| {
        cells
            .iter()
            .find(|c| {
                c.topology == topology
                    && c.mode == mode
                    && c.policy == policy
                    && c.clients == clients
            })
            .map(|c| c.tables_per_sec)
            .unwrap_or(0.0)
    };
    // The PR's acceptance bar: the pool with keep-alive must sustain at
    // least the thread-per-connection eager baseline at 16 clients.
    let baseline = tps("thread_per_conn", "request", "eager", 16);
    let pooled = tps("pool", "request", "eager", 16);
    r.check(
        format!(
            "pool sustains thread-per-conn eager at 16 clients ({pooled:.1} vs {baseline:.1} t/s)"
        )
        .as_str(),
        pooled >= baseline * 0.95,
    );
    // `connects == clients` means every client kept its one connection for
    // the whole cell — keep-alive never dropped it (the absolute reuse
    // rate also reflects each client's unavoidable first dial, so short
    // cells with many clients sit well below 1.0 by construction).
    r.check(
        "keep-alive holds connections (no client re-dials in request cells)",
        cells.iter().filter(|c| c.mode == "request").all(|c| c.connects == c.clients),
    );
    r.print();

    let json = render_json(&opts, bodies.len(), n_threads, &cells);
    std::fs::write("BENCH_serve.json", json).expect("write BENCH_serve.json");
    eprintln!("[serve_load] wrote BENCH_serve.json, total elapsed {:?}", started.elapsed());
}

fn reuse_rate(c: &Cell) -> f64 {
    if c.requests == 0 {
        return 0.0;
    }
    1.0 - (c.connects as f64 / c.requests as f64).min(1.0)
}

fn render_json(
    opts: &ExpOptions,
    corpus_tables: usize,
    n_threads: usize,
    cells: &[Cell],
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"serve\",\n");
    out.push_str(&format!("  \"scale\": \"{:?}\",\n", opts.scale).to_lowercase());
    out.push_str(&format!("  \"seed\": {},\n", opts.seed));
    out.push_str(&doduo_bench::stages::HostMeta::detect(opts.scale).json_line());
    out.push_str(&format!("  \"corpus_tables\": {corpus_tables},\n"));
    out.push_str(&format!("  \"max_threads\": {n_threads},\n"));
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"topology\": \"{}\", \"mode\": \"{}\", \"workers\": {}, \"policy\": \"{}\", \
             \"max_delay_ms\": {}, \"clients\": {}, \"requests\": {}, \"connects\": {}, \
             \"conn_reuse_rate\": {:.4}, \"secs\": {:.3}, \"tables_per_sec\": {:.3}, \
             \"latency_ms\": {{\"mean\": {:.3}, \"p50\": {:.3}, \"p99\": {:.3}, \
             \"max\": {:.3}}}}}{}\n",
            c.topology,
            c.mode,
            c.workers,
            c.policy,
            c.max_delay_ms,
            c.clients,
            c.requests,
            c.connects,
            reuse_rate(c),
            c.secs,
            c.tables_per_sec,
            c.latency_ms.mean,
            c.latency_ms.p50,
            c.latency_ms.p99,
            c.latency_ms.max,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}
