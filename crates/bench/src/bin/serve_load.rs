//! Closed-loop load bench for the `doduo-served` daemon (not a paper
//! experiment — the online-serving lever of the ROADMAP's production north
//! star).
//!
//! Starts the daemon in-process on an ephemeral port, then drives it over
//! real HTTP with closed-loop clients (each thread: send one single-table
//! request, wait for the response, repeat) across a grid of client counts ×
//! batching policies, and writes per-cell p50/p99 latency and tables/sec to
//! `BENCH_serve.json`.
//!
//! The policy axis is the daemon's whole point: `eager` flushes as soon as
//! the dispatcher wakes (latency-first, batches only what arrived
//! together), while `coalesce` holds the oldest request up to a few
//! milliseconds so concurrent clients share packed forward passes
//! (throughput-first). With one client the two should have near-identical
//! latency; as clients grow, `coalesce` should win tables/sec.
//!
//! Run: `cargo run --release -p doduo-bench --bin serve_load -- --scale quick`

use doduo_bench::report::Report;
use doduo_bench::{ExpOptions, Scale};
use doduo_serve::BatchConfig;
use doduo_served::bootstrap::synthetic_world;
use doduo_served::http::Client;
use doduo_served::json::table_to_json;
use doduo_served::{percentiles, BatchPolicy, Percentiles, ServeConfig, Server};
use doduo_tensor::default_threads;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

struct Cell {
    policy: &'static str,
    max_delay_ms: u64,
    clients: usize,
    requests: usize,
    secs: f64,
    tables_per_sec: f64,
    latency_ms: Percentiles,
}

/// One measurement cell: `clients` closed-loop threads hammering `addr`
/// for `duration`, each cycling through its own slice of the corpus.
fn run_cell(
    addr: &str,
    bodies: &[String],
    clients: usize,
    duration: Duration,
) -> (usize, f64, Percentiles) {
    let stop = AtomicBool::new(false);
    let stop = &stop;
    let t0 = Instant::now();
    let lat_us: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|k| {
                scope.spawn(move || {
                    let mut c = Client::connect(addr, Some(Duration::from_secs(30)))
                        .expect("connect to daemon");
                    let mut lats = Vec::new();
                    let mut i = k; // stagger the per-client table streams
                    while !stop.load(Ordering::Relaxed) {
                        let body = &bodies[i % bodies.len()];
                        let r0 = Instant::now();
                        let resp =
                            c.request("POST", "/annotate", body.as_bytes()).expect("annotate");
                        assert_eq!(resp.status, 200, "daemon must answer 200 under load");
                        lats.push(r0.elapsed().as_micros() as u64);
                        i += 1;
                    }
                    lats
                })
            })
            .collect();
        // The scope's main thread is the timer.
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().expect("client thread ok")).collect()
    });
    let secs = t0.elapsed().as_secs_f64();
    let all: Vec<u64> = lat_us.into_iter().flatten().collect();
    let p = percentiles(&all);
    let p_ms = Percentiles {
        count: p.count,
        mean: p.mean / 1e3,
        p50: p.p50 / 1e3,
        p99: p.p99 / 1e3,
        max: p.max / 1e3,
    };
    (p_ms.count, secs, p_ms)
}

fn main() {
    let opts = ExpOptions::from_args();
    let started = Instant::now();
    let quick = opts.scale == Scale::Quick;
    let world = synthetic_world(quick, opts.seed);
    let bodies: Vec<String> = world.tables.iter().map(table_to_json).collect();
    let n_threads = default_threads();
    eprintln!(
        "[serve_load] world ready: {} tables, {} cores, setup {:?}",
        bodies.len(),
        n_threads,
        started.elapsed()
    );

    let (cell_secs, client_grid): (f64, Vec<usize>) =
        if quick { (0.6, vec![1, 4, 16]) } else { (2.0, vec![1, 2, 4, 8, 16, 32]) };
    let policies: [(&'static str, u64); 2] = [("eager", 0), ("coalesce", 5)];

    let mut cells: Vec<Cell> = Vec::new();
    for (policy_name, delay_ms) in policies {
        let cfg = ServeConfig {
            addr: "127.0.0.1:0".into(),
            policy: BatchPolicy {
                max_delay: Duration::from_millis(delay_ms),
                ..BatchPolicy::default()
            },
            engine: BatchConfig { threads: n_threads, ..BatchConfig::default() },
            ..ServeConfig::default()
        };
        let server = Server::bind(cfg).expect("bind ephemeral port");
        let addr = server.addr().to_string();
        let handle = server.handle();
        std::thread::scope(|scope| {
            let runner = scope.spawn(|| server.run(&world.bundle));
            // Warm-up pass: fill the tokenization cache, fault pages.
            let (_, _, _) = run_cell(&addr, &bodies, 2, Duration::from_secs_f64(cell_secs / 2.0));
            for &clients in &client_grid {
                let (requests, secs, lat) =
                    run_cell(&addr, &bodies, clients, Duration::from_secs_f64(cell_secs));
                let cell = Cell {
                    policy: policy_name,
                    max_delay_ms: delay_ms,
                    clients,
                    requests,
                    secs,
                    tables_per_sec: requests as f64 / secs,
                    latency_ms: lat,
                };
                eprintln!(
                    "[serve_load] {policy_name:>8} clients {clients:>2}: {:>7.1} tables/sec, \
                     p50 {:>6.2} ms, p99 {:>7.2} ms ({} reqs)",
                    cell.tables_per_sec, cell.latency_ms.p50, cell.latency_ms.p99, requests
                );
                cells.push(cell);
            }
            handle.shutdown();
            runner.join().expect("daemon thread exits");
        });
    }

    let mut r = Report::new(
        "Online serving load (doduo-served, closed-loop clients)",
        &["policy", "delay ms", "clients", "tables/sec", "p50 ms", "p99 ms"],
    );
    for c in &cells {
        r.row(&[
            c.policy.to_string(),
            c.max_delay_ms.to_string(),
            c.clients.to_string(),
            format!("{:.1}", c.tables_per_sec),
            format!("{:.2}", c.latency_ms.p50),
            format!("{:.2}", c.latency_ms.p99),
        ]);
    }
    r.check("every cell answered requests", cells.iter().all(|c| c.requests > 0));
    r.print();

    let json = render_json(&opts, bodies.len(), n_threads, &cells);
    std::fs::write("BENCH_serve.json", json).expect("write BENCH_serve.json");
    eprintln!("[serve_load] wrote BENCH_serve.json, total elapsed {:?}", started.elapsed());
}

fn render_json(
    opts: &ExpOptions,
    corpus_tables: usize,
    n_threads: usize,
    cells: &[Cell],
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"serve\",\n");
    out.push_str(&format!("  \"scale\": \"{:?}\",\n", opts.scale).to_lowercase());
    out.push_str(&format!("  \"seed\": {},\n", opts.seed));
    out.push_str(&format!("  \"corpus_tables\": {corpus_tables},\n"));
    out.push_str(&format!("  \"max_threads\": {n_threads},\n"));
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"policy\": \"{}\", \"max_delay_ms\": {}, \"clients\": {}, \"requests\": {}, \
             \"secs\": {:.3}, \"tables_per_sec\": {:.3}, \"latency_ms\": {{\"mean\": {:.3}, \
             \"p50\": {:.3}, \"p99\": {:.3}, \"max\": {:.3}}}}}{}\n",
            c.policy,
            c.max_delay_ms,
            c.clients,
            c.requests,
            c.secs,
            c.tables_per_sec,
            c.latency_ms.mean,
            c.latency_ms.p50,
            c.latency_ms.p99,
            c.latency_ms.max,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}
