//! `repro` — the one-command reproduction harness.
//!
//! Runs the whole paper-reproduction pipeline at a chosen scale and exits
//! nonzero on any failure, so "does the reproduction still hold?" is one
//! command (and one CI job):
//!
//! ```text
//! repro --scale quick                 # everything, CI smoke scale
//! repro --scale full                  # everything, paper scale
//! repro --scale quick --only serve    # one stage (+ its dependencies)
//! repro --scale quick --only tables --bless   # record new expectations
//! ```
//!
//! Stages (see `doduo_bench::stages` for the graph):
//!
//! 1. **tables** — run every paper table/figure binary, write its stdout
//!    under `repro_out/`, scan for `[FAIL]`, and diff against the committed
//!    expectation in `ci/expected/<bin>.<scale>.txt`. Stdout is
//!    deterministic by policy (timings go to stderr; numerics are
//!    bit-identical across thread counts), so the diff is portable.
//! 2. **train** — fine-tune the default Doduo model as a library call and
//!    save it as an `AnnotatorBundle` checkpoint (`repro_out/doduo_<scale>.dckpt`),
//!    the artifact `doduo-served --checkpoint` consumes.
//! 3. **serve** — load that checkpoint, serve it over real TCP in-process,
//!    prove every `/annotate` response byte-identical to offline, then
//!    decode the daemon's responses into prediction sets and re-run the
//!    Table-3 qualitative checks against the *served* model.
//! 4. **bench** — re-run `gemm`/`throughput`/`serve_load`, rewriting the
//!    committed `BENCH_*.json` in place (each stamped with the `host`
//!    metadata block).
//! 5. **check** — `report --check` over the artifacts in the working
//!    directory.

use doduo_bench::report::{pct, Report};
use doduo_bench::stages::{select_stages, StageDef};
use doduo_bench::{run_sherlock, shared_usage, ArgError, ExpOptions, ModelSpec, Scale, World};
use doduo_core::{AnnotatorBundle, Task, ENC_PREFIX};
use doduo_eval::{multi_label_micro, Prf};
use doduo_served::http::Client;
use doduo_served::json::table_to_json;
use doduo_served::validate::{check_online_equivalence, offline_response_quant};
use doduo_served::{ServeConfig, Server};
use doduo_table::{AnnotatedTable, LabelVocab};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

/// The paper table/figure binaries the `tables` stage regenerates. `tune`
/// is deliberately absent: it is a sweep helper, not a paper experiment,
/// and forces `--no-cache`.
const TABLE_BINS: &[&str] = &[
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "table9",
    "table10",
    "table11",
    "table12",
    "table13",
    "figure4",
    "figure5",
    "figure6",
    "ablation_dirty",
];

/// The bench binaries the `bench` stage re-runs; each rewrites its
/// committed artifact in the working directory.
const BENCH_BINS: &[(&str, &str)] = &[
    ("gemm", "BENCH_gemm.json"),
    ("throughput", "BENCH_throughput.json"),
    ("serve_load", "BENCH_serve.json"),
];

struct ReproArgs {
    opts: ExpOptions,
    only: Vec<String>,
    bless: bool,
}

fn usage(bin: &str) -> String {
    format!(
        "{}\n\
         \n\
         repro options:\n\
         \x20 --only STAGE         run one stage (+ its dependencies); repeatable.\n\
         \x20                      stages: {}\n\
         \x20 --bless              (tables stage) record the outputs as the new\n\
         \x20                      expectations under ci/expected/ instead of diffing\n\
         \n\
         Outputs land in repro_out/; run from the repository root so the bench\n\
         stage rewrites the committed BENCH_*.json files.",
        shared_usage(bin, "one-command reproduction harness: tables, train, serve, bench, check"),
        doduo_bench::stages::STAGES.iter().map(|s| s.name).collect::<Vec<_>>().join(", "),
    )
}

fn parse_args() -> ReproArgs {
    let argv: Vec<String> = std::env::args().collect();
    let mut shared: Vec<String> = Vec::new();
    let mut only = Vec::new();
    let mut bless = false;
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--only" => {
                i += 1;
                match argv.get(i) {
                    Some(s) => only.push(s.clone()),
                    None => {
                        eprintln!("--only needs a stage name\n\n{}", usage("repro"));
                        std::process::exit(2);
                    }
                }
            }
            "--bless" => bless = true,
            other => shared.push(other.to_string()),
        }
        i += 1;
    }
    let opts = match ExpOptions::parse(&shared) {
        Ok(o) => o,
        Err(ArgError::Help) => {
            println!("{}", usage("repro"));
            std::process::exit(0);
        }
        Err(ArgError::Bad(msg)) => {
            eprintln!("{msg}\n\n{}", usage("repro"));
            std::process::exit(2);
        }
    };
    ReproArgs { opts, only, bless }
}

fn scale_str(s: Scale) -> &'static str {
    match s {
        Scale::Quick => "quick",
        Scale::Full => "full",
    }
}

/// Everything the `train` stage hands to `serve`.
struct TrainedWorld {
    world: World,
    checkpoint: PathBuf,
    /// Offline test scores of the checkpointed model, for the
    /// daemon-vs-offline F1 equality check.
    type_f1: f64,
    rel_f1: f64,
}

struct Harness {
    args: ReproArgs,
    out_dir: PathBuf,
    expected_dir: PathBuf,
    trained: Option<TrainedWorld>,
}

impl Harness {
    /// Resolves a sibling binary (the bins of this same build).
    fn sibling(&self, bin: &str) -> PathBuf {
        let me = std::env::current_exe().expect("current_exe");
        me.parent().expect("bin dir").join(bin)
    }

    /// Runs a sibling with the shared flags, capturing stdout. Stderr is
    /// inherited so training/bench progress stays visible.
    fn run_sibling(&self, bin: &str, extra: &[&str]) -> Result<String, String> {
        let mut cmd = Command::new(self.sibling(bin));
        cmd.arg("--scale")
            .arg(scale_str(self.args.opts.scale))
            .arg("--seed")
            .arg(self.args.opts.seed.to_string());
        if self.args.opts.no_cache {
            cmd.arg("--no-cache");
        }
        cmd.args(extra);
        let out = cmd.output().map_err(|e| format!("cannot run {bin}: {e}"))?;
        if !out.status.success() {
            return Err(format!("{bin} exited with {}", out.status));
        }
        String::from_utf8(out.stdout).map_err(|_| format!("{bin} wrote non-UTF-8 stdout"))
    }

    fn stage_tables(&mut self) -> Result<String, String> {
        let scale = scale_str(self.args.opts.scale);
        let mut blessed = 0;
        let mut known_failing = 0;
        for bin in TABLE_BINS {
            let t = Instant::now();
            let stdout = self.run_sibling(bin, &[])?;
            let name = format!("{bin}.{scale}.txt");
            let out_path = self.out_dir.join(&name);
            std::fs::write(&out_path, &stdout)
                .map_err(|e| format!("cannot write {}: {e}", out_path.display()))?;
            // Some qualitative checks are known not to hold at quick scale
            // (the shape needs the full-scale world). The gate is the
            // *snapshot diff*: the committed expectation records exactly
            // which checks pass at this scale, so a check flipping either
            // way fails the diff below.
            known_failing += stdout.matches("[FAIL]").count();
            let expected_path = self.expected_dir.join(&name);
            if self.args.bless {
                std::fs::create_dir_all(&self.expected_dir)
                    .map_err(|e| format!("cannot create {}: {e}", self.expected_dir.display()))?;
                std::fs::write(&expected_path, &stdout)
                    .map_err(|e| format!("cannot write {}: {e}", expected_path.display()))?;
                blessed += 1;
            } else {
                let expected = std::fs::read_to_string(&expected_path).map_err(|_| {
                    format!(
                        "{bin}: no committed expectation at {} (run with --bless to record one)",
                        expected_path.display()
                    )
                })?;
                if expected != stdout {
                    diff_hint(bin, &expected, &stdout)?;
                }
            }
            eprintln!("[repro] tables: {bin} ok in {:?}", t.elapsed());
        }
        Ok(if self.args.bless {
            format!(
                "{blessed} expectations recorded under {} ({known_failing} known-failing checks \
                 at this scale)",
                self.expected_dir.display()
            )
        } else {
            format!(
                "{} binaries match ci/expected/ ({known_failing} known-failing checks at this \
                 scale, unchanged)",
                TABLE_BINS.len()
            )
        })
    }

    fn stage_train(&mut self) -> Result<String, String> {
        let world = World::bootstrap(self.args.opts.clone());
        let splits = world.wikitable();
        let cfg = world.train_config();
        let tasks = [Task::ColumnType, Task::ColumnRelation];
        let doduo =
            world.trained_model("wiki-doduo", &ModelSpec::doduo(), &splits, &tasks, true, &cfg);
        let type_f1 = doduo.scores.type_micro.f1;
        let rel_f1 = doduo.scores.rel_micro.map(|r| r.f1).unwrap_or(0.0);
        let bundle = AnnotatorBundle::new(
            doduo.store,
            doduo.model,
            world.lm.tokenizer.clone(),
            splits.train.type_vocab.clone(),
            splits.train.rel_vocab.clone(),
            ENC_PREFIX,
        );
        let path = self.out_dir.join(format!("doduo_{}.dckpt", scale_str(self.args.opts.scale)));
        bundle.save_to(&path).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        let size = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        self.trained = Some(TrainedWorld { world, checkpoint: path.clone(), type_f1, rel_f1 });
        Ok(format!(
            "checkpoint {} ({:.1} MiB), offline type F1 {}, rel F1 {}",
            path.display(),
            size as f64 / (1024.0 * 1024.0),
            pct(type_f1),
            pct(rel_f1),
        ))
    }

    fn stage_serve(&mut self) -> Result<String, String> {
        let trained = self.trained.as_ref().expect("serve depends on train");
        let world = &trained.world;
        let splits = world.wikitable();
        let cfg = world.train_config();
        let tasks = [Task::ColumnType, Task::ColumnRelation];

        // The checkpoint round-trips through disk — serving what a daemon
        // restart would actually load.
        let bundle = std::sync::Arc::new(AnnotatorBundle::load_from(&trained.checkpoint)?);

        // Offline comparison points for the Table-3 checks (cache hits when
        // the tables stage — or a previous run — already trained them).
        let (sher_pred, sher_gold) = run_sherlock(&splits, true, world.opts.scale, world.opts.seed);
        let sherlock = multi_label_micro(&sher_pred, &sher_gold);
        let turl =
            world.trained_model("wiki-turl", &ModelSpec::turl(), &splits, &tasks, true, &cfg);
        let turl_meta = world.trained_model(
            "wiki-turl-meta",
            &ModelSpec::turl().with_metadata(),
            &splits,
            &tasks,
            true,
            &cfg,
        );
        let doduo_meta = world.trained_model(
            "wiki-doduo-meta",
            &ModelSpec::doduo().with_metadata(),
            &splits,
            &tasks,
            true,
            &cfg,
        );

        let bodies: Vec<String> =
            splits.test.tables.iter().map(|at| table_to_json(&at.table)).collect();

        let server = Server::bind(ServeConfig { addr: "127.0.0.1:0".into(), ..Default::default() })
            .map_err(|e| format!("cannot bind: {e}"))?;
        let addr = server.addr().to_string();
        let handle = server.handle();

        let (identical, daemon_type, daemon_rel) = std::thread::scope(|scope| {
            let srv = scope.spawn(|| server.run(bundle.clone()));
            let result = (|| -> Result<_, String> {
                // Gate 1: every response byte-identical to offline, over
                // real TCP.
                let identical = check_online_equivalence(&addr, &bundle, &bodies)?;
                // Gate 2: decode the daemon's own responses into prediction
                // sets and score them against gold.
                let mut client = Client::connect(&addr, Some(Duration::from_secs(60)))
                    .map_err(|e| format!("cannot connect: {e}"))?;
                let mut texts = Vec::new();
                for body in &bodies {
                    let resp = client
                        .request("POST", "/v1/annotate", body.as_bytes())
                        .map_err(|e| format!("annotate: {e}"))?;
                    texts.push(
                        String::from_utf8(resp.body)
                            .map_err(|_| "non-UTF-8 response".to_string())?,
                    );
                }
                let (t, rel) = score_responses(
                    &splits.test.tables,
                    &texts,
                    &splits.test.type_vocab,
                    &splits.test.rel_vocab,
                )?;
                Ok((identical, t, rel))
            })();
            handle.shutdown();
            srv.join().expect("server thread");
            result
        })?;

        // Gate 3: the int8 tier over the same trained checkpoint. Offline
        // responses stand in for an int8 daemon — the quantized path is
        // batch-composition invariant, so a `--quant int8` daemon would
        // return these exact bytes (CI's serve-smoke proves that end to
        // end over TCP).
        let quant_texts: Vec<String> =
            bodies.iter().map(|b| offline_response_quant(&bundle, b)).collect::<Result<_, _>>()?;
        let (quant_type, quant_rel) = score_responses(
            &splits.test.tables,
            &quant_texts,
            &splits.test.type_vocab,
            &splits.test.rel_vocab,
        )?;

        let mut r = Report::new(
            "Serve: Table-3 checks against the daemon-served checkpoint",
            &["method", "type F1", "rel F1", "source"],
        );
        r.row(&["Sherlock".into(), pct(sherlock.f1), "-".into(), "offline".into()]);
        r.row(&[
            "TURL (repro)".into(),
            pct(turl.scores.type_micro.f1),
            turl.scores.rel_micro.map(|x| pct(x.f1)).unwrap_or_else(|| "-".into()),
            "offline".into(),
        ]);
        r.row(&["Doduo (served)".into(), pct(daemon_type.f1), pct(daemon_rel.f1), "daemon".into()]);
        r.row(&["Doduo (int8)".into(), pct(quant_type.f1), pct(quant_rel.f1), "quant".into()]);
        r.row(&[
            "TURL+metadata".into(),
            pct(turl_meta.scores.type_micro.f1),
            turl_meta.scores.rel_micro.map(|x| pct(x.f1)).unwrap_or_else(|| "-".into()),
            "offline".into(),
        ]);
        r.row(&[
            "Doduo+metadata".into(),
            pct(doduo_meta.scores.type_micro.f1),
            doduo_meta.scores.rel_micro.map(|x| pct(x.f1)).unwrap_or_else(|| "-".into()),
            "offline".into(),
        ]);

        r.check(
            format!("all {identical} daemon responses byte-identical to offline"),
            identical == bodies.len(),
        );
        r.check(
            "daemon type F1 == offline type F1 (served checkpoint is the trained model)",
            (daemon_type.f1 - trained.type_f1).abs() < 1e-9,
        );
        r.check("daemon rel F1 == offline rel F1", (daemon_rel.f1 - trained.rel_f1).abs() < 1e-9);
        // The five Table-3 qualitative checks, with Doduo's side measured
        // through the daemon.
        r.check(
            "Doduo type F1 > TURL type F1 (paper: 92.45 > 88.86)",
            daemon_type.f1 > turl.scores.type_micro.f1,
        );
        r.check(
            "Doduo type F1 > Sherlock type F1 (paper: 92.45 > 78.47)",
            daemon_type.f1 > sherlock.f1,
        );
        r.check(
            "Doduo rel F1 >= TURL rel F1 (paper: 91.72 > 90.94)",
            daemon_rel.f1 >= turl.scores.rel_micro.map(|x| x.f1).unwrap_or(0.0),
        );
        r.check(
            "metadata helps or ties Doduo type F1 (paper: 92.79 >= 92.45)",
            doduo_meta.scores.type_micro.f1 >= daemon_type.f1 - 0.01,
        );
        r.check(
            "metadata helps TURL more than Doduo (paper: +3.8 vs +0.3 type F1)",
            (turl_meta.scores.type_micro.f1 - turl.scores.type_micro.f1)
                > (doduo_meta.scores.type_micro.f1 - daemon_type.f1) - 0.01,
        );
        // The int8 accuracy gate: quantization may drift scores in the low
        // bits but must not move micro-F1 beyond the pinned tolerance, and
        // every Table-3 qualitative conclusion must survive the int8 tier.
        const QUANT_F1_TOL: f64 = 0.02;
        r.check(
            format!("int8 type F1 within {QUANT_F1_TOL} of f32 (accuracy gate)"),
            (quant_type.f1 - daemon_type.f1).abs() <= QUANT_F1_TOL,
        );
        r.check(
            format!("int8 rel F1 within {QUANT_F1_TOL} of f32 (accuracy gate)"),
            (quant_rel.f1 - daemon_rel.f1).abs() <= QUANT_F1_TOL,
        );
        r.check(
            "int8: Doduo type F1 > TURL type F1 (Table-3 check survives quantization)",
            quant_type.f1 > turl.scores.type_micro.f1,
        );
        r.check(
            "int8: Doduo type F1 > Sherlock type F1 (Table-3 check survives quantization)",
            quant_type.f1 > sherlock.f1,
        );
        r.check(
            "int8: Doduo rel F1 >= TURL rel F1 (Table-3 check survives quantization)",
            quant_rel.f1 >= turl.scores.rel_micro.map(|x| x.f1).unwrap_or(0.0),
        );
        r.check(
            "int8: metadata helps or ties Doduo type F1 (Table-3 check survives quantization)",
            doduo_meta.scores.type_micro.f1 >= quant_type.f1 - 0.01,
        );
        r.check(
            "int8: metadata helps TURL more than Doduo (Table-3 check survives quantization)",
            (turl_meta.scores.type_micro.f1 - turl.scores.type_micro.f1)
                > (doduo_meta.scores.type_micro.f1 - quant_type.f1) - 0.01,
        );
        r.print();
        if !r.all_checks_pass() {
            return Err("serve-stage checks failed".into());
        }
        Ok(format!(
            "{} responses byte-identical, daemon type F1 {} / rel F1 {}, int8 type F1 {} / rel \
             F1 {}, Table-3 checks pass in both tiers",
            bodies.len(),
            pct(daemon_type.f1),
            pct(daemon_rel.f1),
            pct(quant_type.f1),
            pct(quant_rel.f1),
        ))
    }

    fn stage_bench(&mut self) -> Result<String, String> {
        let mut written = Vec::new();
        for (bin, artifact) in BENCH_BINS {
            let t = Instant::now();
            self.run_sibling(bin, &[])?;
            // Each bench bin writes its artifact into the working
            // directory; verify it exists and carries the host block.
            doduo_bench::artifact::check_bench_file(Path::new(artifact))
                .map_err(|errs| format!("{artifact} (from {bin}): {}", errs.join("; ")))?;
            eprintln!("[repro] bench: {bin} rewrote {artifact} in {:?}", t.elapsed());
            written.push(*artifact);
        }
        Ok(format!("rewrote {} with host metadata", written.join(", ")))
    }

    fn stage_check(&mut self) -> Result<String, String> {
        let out = Command::new(self.sibling("report"))
            .arg("--check")
            .output()
            .map_err(|e| format!("cannot run report: {e}"))?;
        print!("{}", String::from_utf8_lossy(&out.stdout));
        eprint!("{}", String::from_utf8_lossy(&out.stderr));
        if !out.status.success() {
            return Err("report --check found schema violations".into());
        }
        Ok("all bench artifacts pass report --check".into())
    }

    fn run_stage(&mut self, s: &StageDef) -> Result<String, String> {
        match s.name {
            "tables" => self.stage_tables(),
            "train" => self.stage_train(),
            "serve" => self.stage_serve(),
            "bench" => self.stage_bench(),
            "check" => self.stage_check(),
            other => Err(format!("stage {other} has no implementation")),
        }
    }
}

/// Decodes per-table `/annotate` response bodies into prediction sets
/// (threshold/argmax rule) and scores them micro-averaged against gold,
/// returning `(type, relation)` scores. Shared between the f32 daemon gate
/// and the int8 accuracy gate so both tiers are judged by the same rule.
fn score_responses(
    tables: &[AnnotatedTable],
    texts: &[String],
    type_vocab: &LabelVocab,
    rel_vocab: &LabelVocab,
) -> Result<(Prf, Prf), String> {
    let mut type_pred = Vec::new();
    let mut type_gold = Vec::new();
    let mut rel_pred = Vec::new();
    let mut rel_gold = Vec::new();
    for (at, text) in tables.iter().zip(texts) {
        let dec = doduo_served::validate::decode_annotation(text)?;
        for (col, labels) in &dec.col_types {
            type_pred.push(to_ids(labels, type_vocab)?);
            type_gold.push(at.col_types[*col].clone());
        }
        for gold_rel in &at.relations {
            let pred = dec
                .relations
                .iter()
                .find(|(s, o, _)| *s == gold_rel.subject_col && *o == gold_rel.object_col)
                .map(|(_, _, labels)| to_ids(labels, rel_vocab))
                .transpose()?
                .unwrap_or_default();
            rel_pred.push(pred);
            rel_gold.push(vec![gold_rel.relation]);
        }
    }
    Ok((multi_label_micro(&type_pred, &type_gold), multi_label_micro(&rel_pred, &rel_gold)))
}

/// Maps decoded label names back to ids under the dataset's vocabulary.
fn to_ids(labels: &[String], vocab: &LabelVocab) -> Result<Vec<u32>, String> {
    labels
        .iter()
        .map(|n| vocab.id(n).ok_or_else(|| format!("daemon emitted unknown label {n:?}")))
        .collect()
}

/// Fails with the first differing line between expectation and output.
fn diff_hint(bin: &str, expected: &str, actual: &str) -> Result<(), String> {
    for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        if e != a {
            return Err(format!(
                "{bin}: output differs from expectation at line {}:\n  expected: {e}\n  actual:   {a}",
                i + 1
            ));
        }
    }
    Err(format!(
        "{bin}: output differs from expectation in length ({} vs {} lines)",
        expected.lines().count(),
        actual.lines().count()
    ))
}

fn main() {
    let args = parse_args();
    let stages = match select_stages(&args.only) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let out_dir = PathBuf::from("repro_out");
    std::fs::create_dir_all(&out_dir).expect("create repro_out/");
    let mut h = Harness {
        args,
        out_dir,
        expected_dir: PathBuf::from("ci").join("expected"),
        trained: None,
    };

    let t0 = Instant::now();
    eprintln!(
        "[repro] scale {}, seed {}, stages: {}",
        scale_str(h.args.opts.scale),
        h.args.opts.seed,
        stages.iter().map(|s| s.name).collect::<Vec<_>>().join(" → "),
    );
    let mut summary = Report::new("Reproduction summary", &["stage", "result"]);
    let mut failed = false;
    for s in &stages {
        let t = Instant::now();
        eprintln!("[repro] === stage {} — {}", s.name, s.about);
        match h.run_stage(s) {
            Ok(msg) => {
                eprintln!("[repro] === stage {} ok in {:?}", s.name, t.elapsed());
                summary.row(&[s.name.into(), msg]);
                summary.check(format!("stage {}", s.name), true);
            }
            Err(e) => {
                eprintln!("[repro] === stage {} FAILED in {:?}: {e}", s.name, t.elapsed());
                summary.row(&[s.name.into(), format!("FAILED: {e}")]);
                summary.check(format!("stage {}", s.name), false);
                failed = true;
                // Later stages may depend on this one's outputs; stop.
                break;
            }
        }
    }
    summary.print();
    eprintln!("[repro] total elapsed {:?}", t0.elapsed());
    if failed {
        std::process::exit(1);
    }
}
