//! Table 12 — language-model probing on WikiTable-style classes
//! (Appendix A.5): does the *vanilla pretrained* LM (no fine-tuning) store
//! factual knowledge about column types and relations?
//!
//! Method (as in the paper): fill the template "`<value>` is a `<type>`"
//! with every candidate type word, score each filled sentence with
//! pseudo-perplexity, and record the average rank / normalized PPL of the
//! true type. Relations use "`<subject>` `<phrase>` `<object>`" templates.
//!
//! Paper's qualitative finding: frequent domains probe well
//! (government.election rank 6.7, geography.river 9.3, religion, book.author,
//! education.university) while rare ones probe poorly (royalty.monarch,
//! astronomy.constellation, law.invention, biology.organism,
//! royalty.kingdom, rank 58-73 of 80). Our corpus frequency tiers are
//! engineered to reproduce exactly this split.

use doduo_bench::report::Report;
use doduo_bench::{ExpOptions, World};
use doduo_core::instantiate_lm;
use doduo_datagen::Profession;
use doduo_eval::{aggregate_probes, top_bottom, ProbeItem};
use doduo_tokenizer::{CLS, SEP};
use doduo_transformer::pseudo_perplexity;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SAMPLES_PER_CLASS: usize = 6;

fn main() {
    let opts =
        ExpOptions::from_args_for("Table 12: qualitative win/loss cases vs the Sherlock baseline");
    let world = World::bootstrap(opts);
    let (store, encoder, head) = instantiate_lm(&world.lm);
    let tok = &world.lm.tokenizer;
    let kb = &world.kb;
    let mut rng = StdRng::seed_from_u64(world.opts.seed ^ 0x12aa);

    let encode = |sentence: &str| {
        let mut ids = vec![CLS];
        ids.extend(tok.encode(sentence));
        ids.push(SEP);
        ids
    };
    let ppl = |sentence: &str| pseudo_perplexity(&encoder, &head, &store, &encode(sentence));

    // ---- Column types: (class, type word, sample values).
    let sample = |rng: &mut StdRng, pool: Vec<String>, k: usize| -> Vec<String> {
        let mut out = Vec::new();
        for _ in 0..k.min(pool.len()) {
            out.push(pool[rng.gen_range(0..pool.len())].clone());
        }
        out
    };
    let people_with = |p: Profession, rng: &mut StdRng| {
        let pool: Vec<String> =
            kb.people_with(p).iter().map(|&i| kb.people[i].name.clone()).collect();
        sample(rng, pool, SAMPLES_PER_CLASS)
    };

    let type_classes: Vec<(&str, &str, Vec<String>)> = vec![
        (
            "government.election",
            "election",
            sample(
                &mut rng,
                kb.elections.iter().map(|e| format!("the {}", e.name)).collect(),
                SAMPLES_PER_CLASS,
            ),
        ),
        (
            "geography.river",
            "river",
            sample(&mut rng, kb.rivers.iter().map(|r| r.name.clone()).collect(), SAMPLES_PER_CLASS),
        ),
        ("religion.religion", "religion", kb.religions.iter().map(|s| s.to_string()).collect()),
        ("book.author", "author", people_with(Profession::Author, &mut rng)),
        (
            "education.university",
            "university",
            sample(
                &mut rng,
                kb.universities.iter().map(|u| u.name.clone()).collect(),
                SAMPLES_PER_CLASS,
            ),
        ),
        (
            "film.film",
            "film",
            sample(&mut rng, kb.films.iter().map(|f| f.title.clone()).collect(), SAMPLES_PER_CLASS),
        ),
        ("film.director", "director", people_with(Profession::Director, &mut rng)),
        ("film.producer", "producer", people_with(Profession::Producer, &mut rng)),
        (
            "location.citytown",
            "city",
            sample(&mut rng, kb.cities.iter().map(|c| c.name.clone()).collect(), SAMPLES_PER_CLASS),
        ),
        (
            "location.country",
            "country",
            sample(
                &mut rng,
                kb.countries.iter().map(|c| c.name.clone()).collect(),
                SAMPLES_PER_CLASS,
            ),
        ),
        (
            "sports.sports_team",
            "team",
            sample(&mut rng, kb.teams.iter().map(|t| t.name.clone()).collect(), SAMPLES_PER_CLASS),
        ),
        ("music.artist", "artist", people_with(Profession::MusicArtist, &mut rng)),
        (
            "book.book",
            "book",
            sample(&mut rng, kb.books.iter().map(|b| b.title.clone()).collect(), SAMPLES_PER_CLASS),
        ),
        ("royalty.monarch", "monarch", people_with(Profession::Monarch, &mut rng)),
        (
            "astronomy.constellation",
            "constellation",
            kb.constellations.iter().take(SAMPLES_PER_CLASS).map(|s| s.to_string()).collect(),
        ),
        (
            "law.invention",
            "invention",
            kb.inventions.iter().take(SAMPLES_PER_CLASS).map(|i| i.name.clone()).collect(),
        ),
        (
            "biology.organism",
            "organism",
            kb.organisms.iter().take(SAMPLES_PER_CLASS).map(|s| format!("the {s}")).collect(),
        ),
        (
            "royalty.kingdom",
            "kingdom",
            kb.kingdoms.iter().take(SAMPLES_PER_CLASS).map(|k| format!("the {}", k.name)).collect(),
        ),
    ];
    let candidates: Vec<&str> = type_classes.iter().map(|c| c.1).collect();

    let article = |word: &str| {
        if word.starts_with(['a', 'e', 'i', 'o', 'u']) {
            "an"
        } else {
            "a"
        }
    };

    let mut items: Vec<(String, ProbeItem)> = Vec::new();
    for (class, _, values) in &type_classes {
        let true_idx = type_classes.iter().position(|c| &c.0 == class).expect("class present");
        for v in values {
            let ppls: Vec<f32> = candidates
                .iter()
                .map(|cand| ppl(&format!("{v} is {} {cand}", article(cand))))
                .collect();
            items.push((class.to_string(), ProbeItem { ppls, true_idx }));
        }
    }
    let stats = aggregate_probes(&items);
    let (top, bottom) = top_bottom(stats.clone(), 5);

    let mut r = Report::new(
        format!("Table 12 (types): probing ranks over {} candidates", candidates.len()),
        &["tier", "class", "avg rank", "PPL/avg PPL"],
    );
    for (tier, list) in [("Top-5", &top), ("Bottom-5", &bottom)] {
        for s in list {
            r.row(&[
                tier.into(),
                s.class.clone(),
                format!("{:.2}", s.avg_rank),
                format!("{:.3}", s.avg_norm_ppl),
            ]);
        }
    }
    // The paper's tiering: frequent-domain classes probe better than the
    // rare tier (monarch / constellation / invention / organism / kingdom).
    let rare = [
        "royalty.monarch",
        "astronomy.constellation",
        "law.invention",
        "biology.organism",
        "royalty.kingdom",
    ];
    let mean = |pred: &dyn Fn(&str) -> bool| {
        let xs: Vec<f64> = stats.iter().filter(|s| pred(&s.class)).map(|s| s.avg_rank).collect();
        xs.iter().sum::<f64>() / xs.len() as f64
    };
    let rare_mean = mean(&|c: &str| rare.contains(&c));
    let freq_mean = mean(&|c: &str| !rare.contains(&c));
    r.check(
        format!(
            "frequent classes probe better than rare ones (avg rank {freq_mean:.1} vs {rare_mean:.1}; paper: ~12 vs ~66)"
        ),
        freq_mean < rare_mean,
    );
    r.check(
        "top-5 mean normalized PPL < 1 (truth more natural than average)",
        top.iter().map(|s| s.avg_norm_ppl).sum::<f64>() / 5.0 < 1.0,
    );
    r.print();

    // ---- Column relations.
    let person = |i: usize| kb.people[i].name.clone();
    let mut rel_items: Vec<(String, String, String)> = Vec::new(); // (class, subj, obj)
    let push_rel =
        |items: &mut Vec<(String, String, String)>, class: &str, pairs: Vec<(String, String)>| {
            for (a, b) in pairs.into_iter().take(SAMPLES_PER_CLASS) {
                items.push((class.to_string(), a, b));
            }
        };
    push_rel(
        &mut rel_items,
        "people.person.place_of_birth",
        kb.people
            .iter()
            .map(|p| (p.name.clone(), kb.city_name(p.birth_city).to_string()))
            .collect(),
    );
    push_rel(
        &mut rel_items,
        "people.person.place_lived",
        kb.people
            .iter()
            .map(|p| (p.name.clone(), kb.city_name(p.lived_city).to_string()))
            .collect(),
    );
    push_rel(
        &mut rel_items,
        "film.film.directed_by",
        kb.films.iter().map(|f| (f.title.clone(), person(f.directors[0]))).collect(),
    );
    push_rel(
        &mut rel_items,
        "film.film.produced_by",
        kb.films.iter().map(|f| (f.title.clone(), person(f.producers[0]))).collect(),
    );
    push_rel(
        &mut rel_items,
        "book.book.author",
        kb.books.iter().map(|b| (b.title.clone(), person(b.author))).collect(),
    );
    push_rel(
        &mut rel_items,
        "sports.pro_athlete.teams",
        kb.people
            .iter()
            .filter(|p| p.team.is_some())
            .map(|p| (p.name.clone(), kb.teams[p.team.expect("filtered")].name.clone()))
            .collect(),
    );
    push_rel(
        &mut rel_items,
        "location.location.containedby",
        kb.cities
            .iter()
            .map(|c| (c.name.clone(), kb.country_name(c.country).to_string()))
            .collect(),
    );
    push_rel(
        &mut rel_items,
        "location.country.languages_spoken",
        kb.countries.iter().map(|c| (c.language.clone(), c.name.clone())).collect(),
    );
    push_rel(
        &mut rel_items,
        "award.award_honor.award_winner",
        kb.awards.iter().map(|a| (format!("the {}", a.name), person(a.winner))).collect(),
    );
    push_rel(
        &mut rel_items,
        "location.location.nearby_airports",
        kb.cities.iter().filter_map(|c| c.airport.clone().map(|a| (a, c.name.clone()))).collect(),
    );
    push_rel(
        &mut rel_items,
        "baseball.baseball_player.position_s",
        kb.people_with(Profession::BaseballPlayer)
            .iter()
            .map(|&i| {
                (
                    kb.people[i].name.clone(),
                    kb.people[i].position.clone().expect("players have positions"),
                )
            })
            .collect(),
    );
    push_rel(
        &mut rel_items,
        "tv.tv_program.country_of_origin",
        kb.tv_programs
            .iter()
            .map(|t| (t.name.clone(), kb.country_name(t.country).to_string()))
            .collect(),
    );

    // Phrase verbalizations (the paper manually converts relation names).
    let phrases: Vec<(&str, &str)> = vec![
        ("people.person.place_of_birth", "was born in"),
        ("people.person.place_lived", "lived in"),
        ("film.film.directed_by", "was directed by"),
        ("film.film.produced_by", "was produced by"),
        ("book.book.author", "was written by"),
        ("sports.pro_athlete.teams", "plays for"),
        ("location.location.containedby", "is a city in"),
        ("location.country.languages_spoken", "is spoken in"),
        ("award.award_honor.award_winner", "was won by"),
        ("location.location.nearby_airports", "is an airport near"),
        ("baseball.baseball_player.position_s", "plays"),
        ("tv.tv_program.country_of_origin", "is from"),
    ];

    let mut rel_probe_items: Vec<(String, ProbeItem)> = Vec::new();
    for (class, subj, obj) in &rel_items {
        let true_idx = phrases.iter().position(|(c, _)| c == class).expect("phrase defined");
        let ppls: Vec<f32> =
            phrases.iter().map(|(_, phrase)| ppl(&format!("{subj} {phrase} {obj}"))).collect();
        rel_probe_items.push((class.clone(), ProbeItem { ppls, true_idx }));
    }
    let rel_stats = aggregate_probes(&rel_probe_items);
    let (rtop, rbottom) = top_bottom(rel_stats.clone(), 5);

    let mut r2 = Report::new(
        format!("Table 12 (relations): probing ranks over {} phrases", phrases.len()),
        &["tier", "relation", "avg rank", "PPL/avg PPL"],
    );
    for (tier, list) in [("Top-5", &rtop), ("Bottom-5", &rbottom)] {
        for s in list {
            r2.row(&[
                tier.into(),
                s.class.clone(),
                format!("{:.2}", s.avg_rank),
                format!("{:.3}", s.avg_norm_ppl),
            ]);
        }
    }
    let pob = rel_stats.iter().find(|s| s.class == "people.person.place_of_birth").expect("probed");
    r2.check(
        format!("place_of_birth probes near the top (rank {:.1}; paper: 3.7 of 34)", pob.avg_rank),
        pob.avg_rank <= phrases.len() as f64 / 2.0,
    );
    r2.check(
        "relation ranks spread less than type ranks (paper: templates with 3 blanks are noisier)",
        (rbottom[0].avg_rank - rtop[0].avg_rank) <= (bottom[0].avg_rank - top[0].avg_rank) + 2.0,
    );
    r2.print();
    eprintln!("[table12] total elapsed {:?}", world.elapsed());
}
