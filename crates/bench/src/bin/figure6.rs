//! Figure 6 — inter-column dependency from attention analysis (Appendix
//! A.4): last-layer `[CLS]`→`[CLS]` attention averaged over heads and
//! tables, normalized by type co-occurrence so the reference point is zero.
//!
//! The paper's reading: the matrix is asymmetric (e.g. `age` relies on
//! `origin` but not vice versa) — the model learned directional
//! inter-column dependencies that raw co-occurrence cannot explain.

use doduo_bench::report::Report;
use doduo_bench::{ExpOptions, ModelSpec, Splits, World};
use doduo_core::{attention_dependency, Task};
use doduo_datagen::multi_column_only;

fn main() {
    let opts = ExpOptions::from_args_for("Figure 6: learning curves over training epochs");
    let world = World::bootstrap(opts);
    let full = world.viznet();
    let splits = Splits {
        train: multi_column_only(&full.train),
        valid: multi_column_only(&full.valid),
        test: multi_column_only(&full.test),
    };
    let cfg = world.train_config();
    let m = world.trained_model(
        "viz-doduo-multi",
        &ModelSpec::doduo(),
        &splits,
        &[Task::ColumnType],
        false,
        &cfg,
    );

    let acc = attention_dependency(&m.model, &m.store, &splits.test, &world.lm.tokenizer);
    let matrix = acc.normalized();
    let n = acc.n_types();
    let vocab = &splits.train.type_vocab;

    // Strongest positive dependencies.
    let mut entries: Vec<(usize, usize, f64)> = Vec::new();
    for i in 0..n {
        for j in 0..n {
            let v = matrix[i * n + j];
            if i != j && v.is_finite() {
                entries.push((i, j, v));
            }
        }
    }
    entries.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite"));

    let mut r = Report::new(
        "Figure 6: strongest inter-column attention dependencies (top 15)",
        &["relies-on (y)", "source (x)", "normalized weight"],
    );
    for &(i, j, v) in entries.iter().take(15) {
        r.row(&[vocab.name(i as u32).into(), vocab.name(j as u32).into(), format!("{v:+.4}")]);
    }

    // Asymmetry statistics (the paper's headline observation).
    let mut asym = 0usize;
    let mut pairs = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let a = matrix[i * n + j];
            let b = matrix[j * n + i];
            if a.is_finite() && b.is_finite() {
                pairs += 1;
                if (a - b).abs() > 0.01 {
                    asym += 1;
                }
            }
        }
    }
    r.check(
        format!("dependencies are asymmetric for many pairs ({asym}/{pairs} with |Δ|>0.01)"),
        pairs > 0 && asym * 4 >= pairs,
    );
    r.check(
        format!("matrix covers many co-occurring type pairs ({} observed)", acc.observed_pairs()),
        acc.observed_pairs() >= 20,
    );
    r.check(
        "positive and negative dependencies both exist (centered at 0)",
        entries.first().map(|e| e.2 > 0.0).unwrap_or(false)
            && entries.last().map(|e| e.2 < 0.0).unwrap_or(false),
    );
    r.print();
    eprintln!("[figure6] total elapsed {:?}", world.elapsed());
}
