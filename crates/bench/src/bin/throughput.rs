//! Serving throughput of the batched annotation engine (not a paper
//! experiment — the scale/speed lever of the ROADMAP's production north
//! star).
//!
//! Annotates a seeded WikiTable-style corpus through `BatchAnnotator` at
//! batch sizes {1, 8, 32} and thread counts {1, N}, reports tables/sec,
//! and writes the measurements — including the per-thread-count scaling
//! curve, the int8 engine (`BatchConfig::quant`) at the serving
//! configuration, and, on multi-core hosts, a single-stream cell that fans
//! the GEMM layer's row stripes across the cores instead — to
//! `BENCH_throughput.json`. The int8 cells record end-to-end serving
//! speedup over the f32 engine at the same batch/thread point (smaller
//! than the kernel-level speedup in `BENCH_gemm.json`: attention,
//! layer-norm, GELU, and tokenization stay f32).
//!
//! The `batch 1 / 1 thread` baseline cell reproduces the pre-batching
//! toolbox algorithm (tokenize every call, one forward pass for the type
//! head, a second for the relation head) — the per-table serving cost this
//! engine replaces. The acceptance bar is batch 32 on all cores reaching
//! at least 2x its tables/sec; the engine gets there by tokenizing each
//! distinct column once (LRU cache), encoding each table once for both
//! heads, and fanning micro-batches across threads (the thread lever is
//! only visible on multi-core hosts).
//!
//! Note on the batch axis: cells use the engine's default
//! `max_batch_tokens` budget, which on CPU cuts table-wise micro-batches
//! after roughly one serving-realistic sequence — so the `max_batch`
//! cells mostly measure the same cache-sized composition and differ only
//! in noise. That is the engine's intended CPU operating point (big
//! packed launches lose to cache-sized forwards here); raise the token
//! budget on backends where large uniform batches win.
//!
//! Run: `cargo run --release -p doduo-bench --bin throughput -- --scale quick`

use doduo_bench::report::Report;
use doduo_bench::{ExpOptions, Scale};
use doduo_core::{
    scored_labels, Annotator, AnnotatorBundle, ColumnTypePrediction, DoduoConfig, DoduoModel,
    RelationPrediction, TableAnnotation,
};
use doduo_datagen::{generate_wikitable, KbConfig, KnowledgeBase, WikiTableConfig};
use doduo_serve::{BatchAnnotator, BatchConfig};
use doduo_table::{SerializeConfig, Table};
use doduo_tensor::{default_threads, set_gemm_threads, ParamStore, Tape};
use doduo_tokenizer::{TrainConfig as TokTrain, WordPiece};
use doduo_transformer::EncoderConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// One measurement cell: mode label, batch size, thread count, and the
/// closure that runs one pass over the corpus.
type Cell<'a> = (&'static str, usize, usize, Box<dyn FnMut() + 'a>);

struct Measurement {
    mode: &'static str,
    batch: usize,
    threads: usize,
    tables: usize,
    elapsed_ms: f64,
    tables_per_sec: f64,
    cache_hit_rate: f64,
}

/// The pre-batching serving algorithm, reproduced as the baseline: fresh
/// tokenization per call, one encoder pass for the type head and a second
/// one for the relation head (what `Annotator::annotate` did before it
/// delegated to the batched path).
fn annotate_sequential_reference(ann: &Annotator<'_>, table: &Table) -> TableAnnotation {
    let ml = ann.model.config().multi_label;
    let mut rng = StdRng::seed_from_u64(0);
    let st = ann.model.serialize_for_types(table, ann.tokenizer).remove(0);
    let mut tape = Tape::inference(ann.store);
    let logits = ann.model.type_logits(&mut tape, &st, &mut rng);
    let v = tape.value(logits);
    let types = (0..v.rows())
        .map(|c| ColumnTypePrediction {
            column: c,
            labels: scored_labels(v.row(c), ann.type_vocab, ml),
        })
        .collect();
    let mut relations = Vec::new();
    if table.n_cols() > 1 && !ann.rel_vocab.is_empty() {
        let pairs: Vec<(usize, usize)> = (1..table.n_cols()).map(|j| (0, j)).collect();
        let mut tape = Tape::inference(ann.store);
        let logits = ann.model.rel_logits(&mut tape, &st, &pairs, &mut rng);
        let v = tape.value(logits);
        for (r, &(s, o)) in pairs.iter().enumerate() {
            relations.push(RelationPrediction {
                subject: s,
                object: o,
                labels: scored_labels(v.row(r), ann.rel_vocab, ml),
            });
        }
    }
    TableAnnotation { types, relations }
}

fn main() {
    let opts = ExpOptions::from_args_for(
        "Annotation throughput bench: batching and thread scaling, writes BENCH_throughput.json",
    );
    let started = Instant::now();

    // A seeded corpus plus a randomly initialized model: annotation cost is
    // independent of training state, so throughput needs no fine-tuning.
    let kb = KnowledgeBase::generate(&KbConfig::default(), opts.seed);
    let (n_tables, min_secs) = match opts.scale {
        Scale::Full => (192, 2.0),
        Scale::Quick => (64, 0.75),
    };
    // Serving-realistic tables: more rows than the training quick-scale so
    // sequences approach the paper's 32-token column budget.
    let ds = generate_wikitable(
        &kb,
        &WikiTableConfig { n_tables, min_rows: 4, max_rows: 8, seed: opts.seed },
    );
    let corpus: Vec<String> = ds
        .tables
        .iter()
        .flat_map(|t| t.table.columns.iter())
        .flat_map(|c| c.values.iter().cloned())
        .collect();
    let tok = WordPiece::train(
        corpus.iter().map(String::as_str),
        &TokTrain { merges: 400, min_pair_count: 2, max_word_len: 24 },
    );
    // The paper-shaped mini encoder at both scales: serving cost is what is
    // being measured, and the tiny test encoder under-weights the encoder
    // relative to fixed per-table overhead.
    let enc = EncoderConfig::mini(tok.vocab_size());
    let max_seq = enc.max_seq;
    // The paper's default serialization budget (32 tokens/col, Table 8).
    let cfg = DoduoConfig::new(enc, ds.type_vocab.len(), ds.rel_vocab.len().max(1), true)
        .with_serialize(SerializeConfig::new(32, max_seq));
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let model = DoduoModel::new(&mut store, cfg, "m", &mut rng);
    let tables: Vec<Table> = ds.tables.into_iter().map(|t| t.table).collect();
    let bundle =
        Arc::new(AnnotatorBundle::new(store, model, tok, ds.type_vocab, ds.rel_vocab, "m"));
    let annotator = || bundle.annotator();
    eprintln!(
        "[throughput] corpus ready: {} tables, vocab {}, setup {:?}",
        tables.len(),
        bundle.tokenizer.vocab_size(),
        started.elapsed()
    );

    let n_threads = default_threads();

    // The measurement grid: the pre-batching per-table algorithm as the
    // batch 1 / 1 thread baseline, then the engine across batch × thread
    // cells (on a single-core host the {1, N} thread grids coincide).
    let thread_grid: Vec<usize> = if n_threads == 1 { vec![1] } else { vec![1, n_threads] };
    let mut server_store: Vec<(&'static str, usize, usize, BatchAnnotator)> = thread_grid
        .iter()
        .flat_map(|&threads| {
            let bundle = &bundle;
            [1usize, 8, 32].into_iter().map(move |batch| {
                let server = BatchAnnotator::with_config(
                    Arc::clone(bundle),
                    BatchConfig {
                        max_batch: batch,
                        threads,
                        cache_capacity: 4096,
                        ..BatchConfig::default()
                    },
                );
                ("batched", batch, threads, server)
            })
        })
        .collect();
    // The int8 engine at the serving configuration (batch 32, each thread
    // count): same scheduling, quantized dense layers.
    for &threads in &thread_grid {
        let server = BatchAnnotator::with_config(
            Arc::clone(&bundle),
            BatchConfig {
                max_batch: 32,
                threads,
                cache_capacity: 4096,
                quant: true,
                ..BatchConfig::default()
            },
        );
        server_store.push(("batched_int8", 32, threads, server));
    }
    let mut cells: Vec<Cell<'_>> = Vec::new();
    {
        let ann = annotator();
        let tables = &tables;
        cells.push((
            "sequential",
            1,
            1,
            Box::new(move || {
                for t in tables {
                    std::hint::black_box(annotate_sequential_reference(&ann, t));
                }
            }),
        ));
    }
    let mut servers: Vec<(&'static str, usize, usize, &BatchAnnotator)> = Vec::new();
    for (mode, batch, threads, server) in &server_store {
        servers.push((mode, *batch, *threads, server));
        let tables = &tables;
        cells.push((
            mode,
            *batch,
            *threads,
            Box::new(move || {
                std::hint::black_box(server.annotate_batch(tables));
            }),
        ));
    }
    // The other threading lever on multi-core hosts: one serving stream
    // (engine threads = 1) with the GEMM layer's row stripes fanned across
    // the cores instead — the latency-oriented configuration.
    if n_threads > 1 {
        if let Some((_, _, _, server)) = server_store
            .iter()
            .find(|(mode, batch, threads, _)| *mode == "batched" && *batch == 32 && *threads == 1)
        {
            let tables = &tables;
            cells.push((
                "batched_gemm_stripes",
                32,
                n_threads,
                Box::new(move || {
                    set_gemm_threads(n_threads);
                    std::hint::black_box(server.annotate_batch(tables));
                    set_gemm_threads(1);
                }),
            ));
        }
    }

    // One warm-up pass per cell (fills tokenization caches, faults pages),
    // then interleave passes round-robin so clock-frequency drift over the
    // run biases every cell equally; per-cell MEDIAN pass time is robust to
    // scheduler noise.
    for (_, _, _, pass) in cells.iter_mut() {
        pass();
    }
    let mut times: Vec<Vec<f64>> = vec![Vec::new(); cells.len()];
    let t0 = Instant::now();
    while t0.elapsed().as_secs_f64() < min_secs * cells.len() as f64 || times[0].len() < 5 {
        for (i, (_, _, _, pass)) in cells.iter_mut().enumerate() {
            let p0 = Instant::now();
            pass();
            times[i].push(p0.elapsed().as_secs_f64());
        }
    }

    let mut results: Vec<Measurement> = Vec::new();
    for (i, (mode, batch, threads, _)) in cells.iter().enumerate() {
        let mut ts = times[i].clone();
        ts.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        let median_secs = ts[ts.len() / 2];
        let hit_rate = servers
            .iter()
            .find(|(md, b, t, _)| md == mode && b == batch && t == threads)
            .map_or(0.0, |(_, _, _, s)| s.cache_stats().hit_rate());
        let m = Measurement {
            mode,
            batch: *batch,
            threads: *threads,
            tables: ts.len() * tables.len(),
            elapsed_ms: median_secs * 1e3,
            tables_per_sec: tables.len() as f64 / median_secs,
            cache_hit_rate: hit_rate,
        };
        eprintln!(
            "[throughput] {} batch {:>2} threads {:>2}: {:>8.1} tables/sec ({} passes)",
            m.mode,
            m.batch,
            m.threads,
            m.tables_per_sec,
            ts.len()
        );
        results.push(m);
    }

    let baseline = results
        .iter()
        .find(|m| m.mode == "sequential")
        .expect("baseline cell measured")
        .tables_per_sec;
    let best_cell = results
        .iter()
        .find(|m| m.mode == "batched" && m.batch == 32 && m.threads == n_threads)
        .expect("batch-32 N-thread cell measured");
    let speedup = best_cell.tables_per_sec / baseline;
    // End-to-end int8 speedup at the serving configuration, against the
    // f32 engine at the same batch/thread point.
    let int8_cell = results
        .iter()
        .find(|m| m.mode == "batched_int8" && m.batch == 32 && m.threads == n_threads)
        .expect("int8 cell measured");
    let int8_speedup = int8_cell.tables_per_sec / best_cell.tables_per_sec;
    // Thread-scaling curve: the best batched cell at each measured thread
    // count (a single point on 1-core hosts; the ROADMAP's serving item
    // wants the multi-core curve recorded whenever one is available).
    let thread_scaling: Vec<(usize, f64)> = thread_grid
        .iter()
        .map(|&threads| {
            let best = results
                .iter()
                .filter(|m| m.mode == "batched" && m.threads == threads)
                .map(|m| m.tables_per_sec)
                .fold(0.0f64, f64::max);
            (threads, best)
        })
        .collect();

    let mut r = Report::new(
        "Serving throughput (batched annotation engine)",
        &["mode", "batch", "threads", "tables/sec", "vs sequential", "cache hit rate"],
    );
    for m in &results {
        r.row(&[
            m.mode.to_string(),
            m.batch.to_string(),
            m.threads.to_string(),
            format!("{:.1}", m.tables_per_sec),
            format!("{:.2}x", m.tables_per_sec / baseline),
            if m.mode == "sequential" {
                "-".to_string()
            } else {
                format!("{:.0}%", m.cache_hit_rate * 100.0)
            },
        ]);
    }
    r.check(format!("batch 32 / {n_threads} threads >= 2x batch 1 / 1 thread"), speedup >= 2.0);
    r.check(
        format!(
            "int8 engine >= 1x f32 engine at batch 32 / {n_threads} threads ({int8_speedup:.2}x)"
        ),
        int8_speedup >= 1.0,
    );
    r.print();

    let json = render_json(
        &opts,
        tables.len(),
        n_threads,
        &results,
        speedup,
        int8_speedup,
        &thread_scaling,
    );
    std::fs::write("BENCH_throughput.json", json).expect("write BENCH_throughput.json");
    eprintln!("[throughput] wrote BENCH_throughput.json, total elapsed {:?}", started.elapsed());
    // The speedup check is recorded (report + JSON) but deliberately does
    // not fail the process: CI runs this binary as a schema smoke test on
    // shared runners whose clocks make a hardware-dependent 2x bar flaky.
}

fn render_json(
    opts: &ExpOptions,
    corpus_tables: usize,
    n_threads: usize,
    results: &[Measurement],
    speedup: f64,
    int8_speedup: f64,
    thread_scaling: &[(usize, f64)],
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"throughput\",\n");
    out.push_str(&format!("  \"scale\": \"{:?}\",\n", opts.scale).to_lowercase());
    out.push_str(&format!("  \"seed\": {},\n", opts.seed));
    out.push_str(&doduo_bench::stages::HostMeta::detect(opts.scale).json_line());
    out.push_str(&format!("  \"corpus_tables\": {corpus_tables},\n"));
    out.push_str(&format!("  \"max_threads\": {n_threads},\n"));
    out.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"batch_size\": {}, \"threads\": {}, \"tables\": {}, \
             \"elapsed_ms\": {:.3}, \"tables_per_sec\": {:.3}, \"cache_hit_rate\": {:.4}}}{}\n",
            m.mode,
            m.batch,
            m.threads,
            m.tables,
            m.elapsed_ms,
            m.tables_per_sec,
            m.cache_hit_rate,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    // The best batched cell per measured thread count (one point per grid
    // entry; a multi-core host yields the full curve).
    out.push_str("  \"thread_scaling\": [\n");
    for (i, (threads, tps)) in thread_scaling.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"threads\": {threads}, \"best_tables_per_sec\": {tps:.3}}}{}\n",
            if i + 1 < thread_scaling.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    // The speedup headline names the configuration it was actually
    // measured at (the old fixed key claimed "nthreads" even on 1-thread
    // hosts).
    out.push_str("  \"speedup\": {\n");
    out.push_str("    \"numerator\": {\"mode\": \"batched\", \"batch_size\": 32, ");
    out.push_str(&format!("\"threads\": {n_threads}}},\n"));
    out.push_str(
        "    \"denominator\": {\"mode\": \"sequential\", \"batch_size\": 1, \"threads\": 1},\n",
    );
    out.push_str(&format!("    \"value\": {speedup:.3}\n"));
    out.push_str("  },\n");
    // End-to-end int8 vs f32 at the serving configuration (same scheduling,
    // quantized dense layers; non-GEMM stages stay f32, so this is the
    // Amdahl-limited system-level view of BENCH_gemm.json's kernel speedup).
    out.push_str("  \"int8_vs_f32\": {\n");
    out.push_str("    \"numerator\": {\"mode\": \"batched_int8\", \"batch_size\": 32, ");
    out.push_str(&format!("\"threads\": {n_threads}}},\n"));
    out.push_str("    \"denominator\": {\"mode\": \"batched\", \"batch_size\": 32, ");
    out.push_str(&format!("\"threads\": {n_threads}}},\n"));
    out.push_str(&format!("    \"value\": {int8_speedup:.3}\n"));
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}
