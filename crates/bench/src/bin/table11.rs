//! Table 11 — MaxToken/col sweep on VizNet (Full): Doduo vs DosoloSCol at
//! budgets 8 / 16 / 32.
//!
//! Paper (macro / micro F1, %): Doduo 81.0/92.5, 83.6/93.6, 83.4/94.2;
//! DosoloSCol 72.7/87.2, 76.1/89.1, 77.4/90.2. Claims: Doduo at 8 tokens
//! already beats Sato (88.4 micro); the multi-column gap persists at every
//! budget because self-attention captures inter-column context.

use doduo_bench::report::{pct, Report};
use doduo_bench::{ExpOptions, ModelSpec, World};
use doduo_core::{predict_types, prepare, Task};
use doduo_eval::macro_f1;

fn main() {
    let opts =
        ExpOptions::from_args_for("Table 11: per-type breakdown on frequent WikiTable types");
    let world = World::bootstrap(opts);
    let splits = world.viznet();
    let cfg = world.train_config();
    let n_types = splits.train.type_vocab.len();

    let paper: &[(&str, usize, &str, &str)] = &[
        ("Doduo", 8, "81.0", "92.5"),
        ("Doduo", 16, "83.6", "93.6"),
        ("Doduo", 32, "83.4", "94.2"),
        ("DosoloSCol", 8, "72.7", "87.2"),
        ("DosoloSCol", 16, "76.1", "89.1"),
        ("DosoloSCol", 32, "77.4", "90.2"),
    ];

    let mut r = Report::new(
        "Table 11: VizNet MaxToken/col sweep (paper vs measured)",
        &["method", "budget", "macro F1", "micro F1", "paper macro", "paper micro"],
    );
    let mut measured = Vec::new();
    for &(name, budget, pm, pi) in paper {
        let spec = match name {
            "Doduo" => ModelSpec::doduo().with_budget(budget),
            _ => ModelSpec::single_column().with_budget(budget),
        };
        // Budget 32 rows reuse the Table 4 / Table 7 checkpoints.
        let key = match (name, budget) {
            ("Doduo", 32) => "viz-doduo-full".to_string(),
            ("DosoloSCol", 32) => "viz-scol".to_string(),
            _ => format!("viz-{}-b{budget}", name.to_lowercase()),
        };
        let m = world.trained_model(&key, &spec, &splits, &[Task::ColumnType], false, &cfg);
        let test_p = prepare(&m.model, &splits.test, &world.lm.tokenizer);
        let preds =
            predict_types(&m.model, &m.store, &test_p.types, doduo_tensor::default_threads());
        let (p, g) = preds.single_label();
        let micro = doduo_eval::multi_class_micro(&p, &g).f1;
        let mac = macro_f1(&p, &g, n_types);
        r.row(&[name.into(), budget.to_string(), pct(mac), pct(micro), pm.into(), pi.into()]);
        measured.push((name, budget, mac, micro));
    }

    for budget in [8usize, 16, 32] {
        let doduo = measured.iter().find(|m| m.0 == "Doduo" && m.1 == budget).unwrap();
        let scol = measured.iter().find(|m| m.0 == "DosoloSCol" && m.1 == budget).unwrap();
        r.check(
            format!(
                "budget {budget}: Doduo micro > DosoloSCol micro (paper holds at every budget)"
            ),
            doduo.3 > scol.3,
        );
    }
    let d8 = measured.iter().find(|m| m.0 == "Doduo" && m.1 == 8).unwrap();
    let d32 = measured.iter().find(|m| m.0 == "Doduo" && m.1 == 32).unwrap();
    r.check("Doduo@8 already close to Doduo@32 micro (paper: 92.5 vs 94.2)", d32.3 - d8.3 < 0.1);
    r.print();
    eprintln!("[table11] total elapsed {:?}", world.elapsed());
}
