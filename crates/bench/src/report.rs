//! Fixed-width table printing: every experiment binary prints the paper's
//! reported numbers next to the measured ones, plus the qualitative checks
//! the reproduction is accountable for.

/// A printable comparison table.
pub struct Report {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    checks: Vec<(String, bool)>,
}

impl Report {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Report {
        Report {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            checks: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Records a qualitative claim check ("Doduo > TURL", …).
    pub fn check(&mut self, name: impl Into<String>, ok: bool) {
        self.checks.push((name.into(), ok));
    }

    /// True when every recorded check passed.
    pub fn all_checks_pass(&self) -> bool {
        self.checks.iter().all(|(_, ok)| *ok)
    }

    /// Renders the report to a string (also used by EXPERIMENTS.md).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (cell, w) in cells.iter().zip(widths.iter()) {
                line.push_str(&format!("{cell:<width$}  ", width = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        if !self.checks.is_empty() {
            out.push_str("\nqualitative checks:\n");
            for (name, ok) in &self.checks {
                out.push_str(&format!("  [{}] {}\n", if *ok { "PASS" } else { "FAIL" }, name));
            }
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats an F1 fraction as the paper's percent convention.
pub fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

/// Formats a paper-reported percentage (already in percent units).
pub fn paper(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_rows_and_checks() {
        let mut r = Report::new("Table X", &["method", "paper F1", "measured F1"]);
        r.row(&["Doduo".into(), "92.5".into(), pct(0.81)]);
        r.row(&["TURL".into(), "88.9".into(), pct(0.74)]);
        r.check("Doduo > TURL", 0.81 > 0.74);
        let s = r.render();
        assert!(s.contains("Table X"));
        assert!(s.contains("Doduo"));
        assert!(s.contains("81.0"));
        assert!(s.contains("[PASS] Doduo > TURL"));
        assert!(r.all_checks_pass());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_enforced() {
        let mut r = Report::new("t", &["a", "b"]);
        r.row(&["only one".into()]);
    }

    #[test]
    fn pct_formats_percent() {
        assert_eq!(pct(0.9245), "92.5");
        assert_eq!(paper(92.45), "92.5");
    }
}
