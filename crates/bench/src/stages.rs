//! Shared infrastructure for the `repro` master binary and the bench bins:
//! the reproduction stage graph (selection + dependency ordering) and the
//! host-metadata block every `BENCH_*.json` artifact is stamped with.
//!
//! The stage graph is deliberately data, not code: `repro` maps each
//! [`StageDef`] to its implementation, while the graph itself (names,
//! dependencies, canonical order) lives here where it can be unit-tested
//! without training a model or binding a socket.

use crate::Scale;

/// One stage of the reproduction pipeline.
#[derive(Debug)]
pub struct StageDef {
    /// The name `--only` selects it by.
    pub name: &'static str,
    /// Stages that must run first (transitive; resolved by
    /// [`select_stages`]).
    pub deps: &'static [&'static str],
    /// One-line description for `--help` and the summary table.
    pub about: &'static str,
}

/// The full pipeline in canonical execution order. `select_stages` always
/// returns a subsequence of this list, so stage implementations can assume
/// their dependencies ran earlier in the same process.
pub const STAGES: &[StageDef] = &[
    StageDef {
        name: "tables",
        deps: &[],
        about: "regenerate every paper table/figure output and diff against ci/expected/",
    },
    StageDef {
        name: "train",
        deps: &[],
        about: "fine-tune the default Doduo model and save an AnnotatorBundle checkpoint",
    },
    StageDef {
        name: "serve",
        deps: &["train"],
        about: "serve the trained checkpoint over HTTP; byte-identity + Table-3 checks",
    },
    StageDef {
        name: "bench",
        deps: &[],
        about: "re-run gemm/throughput/serve_load and rewrite the committed BENCH_*.json",
    },
    StageDef {
        name: "check",
        deps: &[],
        about: "validate every BENCH_*.json schema + host metadata (report --check)",
    },
];

/// Looks up a stage by name.
pub fn stage(name: &str) -> Option<&'static StageDef> {
    STAGES.iter().find(|s| s.name == name)
}

/// Resolves a `--only` selection into the stages to run, in canonical
/// order, with dependencies included transitively. An empty selection
/// means the whole pipeline. Unknown names are an error listing the valid
/// ones.
pub fn select_stages(only: &[String]) -> Result<Vec<&'static StageDef>, String> {
    if only.is_empty() {
        return Ok(STAGES.iter().collect());
    }
    let mut wanted: Vec<&'static str> = Vec::new();
    let mut queue: Vec<&str> = Vec::new();
    for name in only {
        let s = stage(name).ok_or_else(|| {
            format!(
                "unknown stage {name:?} (stages: {})",
                STAGES.iter().map(|s| s.name).collect::<Vec<_>>().join(", ")
            )
        })?;
        queue.push(s.name);
    }
    while let Some(name) = queue.pop() {
        if !wanted.contains(&name) {
            wanted.push(name);
            let s = stage(name).expect("queued names are valid");
            queue.extend(s.deps.iter().copied());
        }
    }
    Ok(STAGES.iter().filter(|s| wanted.contains(&s.name)).collect())
}

/// The host-metadata block stamped into every bench artifact, so a
/// committed curve is self-describing: a 1-core container's numbers can no
/// longer masquerade as the 4-vCPU CI runner's (or vice versa).
#[derive(Clone, Debug, PartialEq)]
pub struct HostMeta {
    /// Logical cores visible to the process.
    pub cores: usize,
    /// `std::env::consts::ARCH` of the measuring binary.
    pub arch: String,
    /// Runtime-detected SIMD features the kernel layer dispatches on
    /// (comma-separated; `"none"` when nothing relevant is available).
    pub target_features: String,
    /// Short git commit of the working tree, or `"unknown"` outside a
    /// repository.
    pub commit: String,
    /// The `--scale` the numbers were measured at.
    pub scale: &'static str,
}

impl HostMeta {
    /// Detects the current host's metadata for a run at `scale`.
    pub fn detect(scale: Scale) -> HostMeta {
        HostMeta {
            cores: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            arch: std::env::consts::ARCH.to_string(),
            target_features: detect_target_features(),
            commit: detect_commit(),
            scale: match scale {
                Scale::Quick => "quick",
                Scale::Full => "full",
            },
        }
    }

    /// Renders the block as a JSON object (no surrounding key).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"cores\": {}, \"arch\": \"{}\", \"target_features\": \"{}\", \
             \"commit\": \"{}\", \"scale\": \"{}\"}}",
            self.cores, self.arch, self.target_features, self.commit, self.scale
        )
    }

    /// Renders the whole artifact line: `  "host": {...},\n` — what the
    /// bench bins splice into their `BENCH_*.json` right after `"seed"`.
    pub fn json_line(&self) -> String {
        format!("  \"host\": {},\n", self.to_json())
    }
}

fn detect_target_features() -> String {
    let mut features: Vec<&str> = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            features.push("avx2");
        }
        if std::arch::is_x86_feature_detected!("fma") {
            features.push("fma");
        }
    }
    if features.is_empty() {
        "none".to_string()
    } else {
        features.join(",")
    }
}

fn detect_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(stages: &[&StageDef]) -> Vec<&'static str> {
        stages.iter().map(|s| s.name).collect()
    }

    #[test]
    fn empty_selection_runs_everything_in_order() {
        let all = select_stages(&[]).expect("empty selection is valid");
        assert_eq!(names(&all), vec!["tables", "train", "serve", "bench", "check"]);
    }

    #[test]
    fn selection_preserves_canonical_order() {
        let picked =
            select_stages(&["check".to_string(), "tables".to_string()]).expect("valid names");
        assert_eq!(names(&picked), vec!["tables", "check"]);
    }

    #[test]
    fn dependencies_are_pulled_in() {
        let picked = select_stages(&["serve".to_string()]).expect("valid name");
        assert_eq!(names(&picked), vec!["train", "serve"], "serve depends on train");
    }

    #[test]
    fn duplicate_selection_is_deduplicated() {
        let picked = select_stages(&["train".to_string(), "serve".to_string()]).expect("valid");
        assert_eq!(names(&picked), vec!["train", "serve"]);
    }

    #[test]
    fn unknown_stage_is_an_error_listing_valid_names() {
        let err = select_stages(&["tables".to_string(), "deploy".to_string()]).unwrap_err();
        assert!(err.contains("deploy"), "error names the bad stage: {err}");
        assert!(err.contains("tables") && err.contains("serve"), "error lists stages: {err}");
    }

    #[test]
    fn every_dependency_is_a_known_stage() {
        for s in STAGES {
            for d in s.deps {
                assert!(stage(d).is_some(), "{}: unknown dep {d}", s.name);
            }
        }
    }

    #[test]
    fn host_meta_detects_and_renders() {
        let h = HostMeta::detect(Scale::Quick);
        assert!(h.cores >= 1);
        assert_eq!(h.scale, "quick");
        let json = h.to_json();
        assert!(json.contains("\"cores\""));
        assert!(json.contains("\"target_features\""));
        assert!(json.contains("\"commit\""));
        assert!(json.contains("\"scale\": \"quick\""));
        assert!(h.json_line().starts_with("  \"host\": {"));
        assert!(h.json_line().ends_with("},\n"));
        assert_eq!(HostMeta::detect(Scale::Full).scale, "full");
    }
}
