//! Criterion micro-benchmarks for the hot substrate paths: matmul and fused
//! attention (the training bottleneck), tokenization, table serialization,
//! Sherlock featurization, LDA inference and k-means. `cargo bench` runs
//! these; the per-table experiment *binaries* regenerate the paper's
//! numbers (`cargo run --release -p doduo-bench --bin table3 ...`).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use doduo_baselines::column_features;
use doduo_datagen::{
    generate_viznet, generate_wikitable, KbConfig, KnowledgeBase, VizNetConfig, WikiTableConfig,
};
use doduo_eval::kmeans;
use doduo_table::{serialize_table, SerializeConfig};
use doduo_tensor::{kernels, matmul, ParamStore, Tape, Tensor};
use doduo_tokenizer::{TrainConfig, WordPiece};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let a = Tensor::randn(76, 96, 1.0, &mut rng);
    let b = Tensor::randn(96, 96, 1.0, &mut rng);
    // The dispatching entry point (what the tape actually calls) plus its
    // two halves, so a regression in either path or in the dispatch
    // heuristic shows up; the `gemm` bin sweeps the full shape grid.
    c.bench_function("matmul_76x96x96", |bench| {
        bench.iter(|| black_box(matmul(black_box(&a), black_box(&b))))
    });
    c.bench_function("matmul_naive_76x96x96", |bench| {
        bench.iter(|| black_box(kernels::matmul_naive(black_box(&a), black_box(&b))))
    });
    c.bench_function("matmul_blocked_76x96x96", |bench| {
        bench.iter(|| black_box(kernels::matmul_blocked(black_box(&a), black_box(&b), 1)))
    });
}

fn bench_mha(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let store = ParamStore::new();
    let q = Tensor::randn(76, 96, 0.3, &mut rng);
    let k = Tensor::randn(76, 96, 0.3, &mut rng);
    let v = Tensor::randn(76, 96, 0.3, &mut rng);
    c.bench_function("mha_fused_s76_d96_h4", |bench| {
        bench.iter_batched(
            || Tape::inference(&store),
            |mut tape| {
                let qn = tape.input(q.clone());
                let kn = tape.input(k.clone());
                let vn = tape.input(v.clone());
                black_box(tape.mha(qn, kn, vn, 4, None));
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_tokenize_and_serialize(c: &mut Criterion) {
    let kb = KnowledgeBase::generate(&KbConfig::default(), 42);
    let ds = generate_wikitable(&kb, &WikiTableConfig { n_tables: 50, ..Default::default() });
    let corpus: Vec<String> = ds
        .tables
        .iter()
        .flat_map(|t| t.table.columns.iter())
        .flat_map(|col| col.values.iter().cloned())
        .collect();
    let tok = WordPiece::train(
        corpus.iter().map(String::as_str),
        &TrainConfig { merges: 500, min_pair_count: 2, max_word_len: 32 },
    );
    c.bench_function("wordpiece_encode_sentence", |bench| {
        bench.iter(|| {
            black_box(
                tok.encode(black_box("george miller directed the crimson horizon in westoria")),
            )
        })
    });
    let cfg = SerializeConfig::new(32, 192);
    c.bench_function("serialize_table_32tok", |bench| {
        bench.iter(|| black_box(serialize_table(black_box(&ds.tables[0].table), &tok, &cfg)))
    });
}

fn bench_sherlock_features(c: &mut Criterion) {
    let kb = KnowledgeBase::generate(&KbConfig::default(), 42);
    let ds = generate_viznet(&kb, &VizNetConfig { n_tables: 10, ..Default::default() });
    let col = &ds.tables[0].table.columns[0];
    c.bench_function("sherlock_column_features", |bench| {
        bench.iter(|| black_box(column_features(black_box(col))))
    });
}

fn bench_kmeans(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let points: Vec<Vec<f32>> =
        (0..50).map(|_| Tensor::randn(1, 96, 1.0, &mut rng).into_vec()).collect();
    c.bench_function("kmeans_50x96_k15", |bench| {
        bench.iter(|| black_box(kmeans(black_box(&points), 15, 30, 7)))
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_mha,
    bench_tokenize_and_serialize,
    bench_sherlock_features,
    bench_kmeans
);
criterion_main!(benches);
