//! Precision / recall / F1 metrics, following §5.3:
//! * WikiTable tasks are multi-label → micro P/R/F1 over (item, label) pairs;
//! * VizNet is single-label multi-class → micro F1 (= accuracy) and macro F1
//!   (unweighted mean of per-class F1).

#![allow(clippy::needless_range_loop)] // index loops over matrix coordinates are clearest here
/// A precision/recall/F1 triple (fractions in `[0, 1]`).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Prf {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
}

impl Prf {
    pub fn from_counts(tp: usize, fp: usize, fn_: usize) -> Prf {
        let p = if tp + fp == 0 { 0.0 } else { tp as f64 / (tp + fp) as f64 };
        let r = if tp + fn_ == 0 { 0.0 } else { tp as f64 / (tp + fn_) as f64 };
        let f1 = if p + r == 0.0 { 0.0 } else { 2.0 * p * r / (p + r) };
        Prf { precision: p, recall: r, f1 }
    }
}

/// Running TP/FP/FN counts for micro-averaged metrics.
#[derive(Clone, Copy, Debug, Default)]
pub struct Counts {
    pub tp: usize,
    pub fp: usize,
    pub fn_: usize,
}

impl Counts {
    /// Adds one item's predicted and gold label sets.
    pub fn add(&mut self, pred: &[u32], gold: &[u32]) {
        for p in pred {
            if gold.contains(p) {
                self.tp += 1;
            } else {
                self.fp += 1;
            }
        }
        for g in gold {
            if !pred.contains(g) {
                self.fn_ += 1;
            }
        }
    }

    pub fn merge(&mut self, other: Counts) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
    }

    pub fn prf(&self) -> Prf {
        Prf::from_counts(self.tp, self.fp, self.fn_)
    }
}

/// Micro-averaged P/R/F1 over multi-label predictions.
pub fn multi_label_micro(pred: &[Vec<u32>], gold: &[Vec<u32>]) -> Prf {
    assert_eq!(pred.len(), gold.len(), "prediction/gold length mismatch");
    let mut c = Counts::default();
    for (p, g) in pred.iter().zip(gold.iter()) {
        c.add(p, g);
    }
    c.prf()
}

/// Micro F1 for single-label multi-class predictions (equals accuracy).
pub fn multi_class_micro(pred: &[u32], gold: &[u32]) -> Prf {
    assert_eq!(pred.len(), gold.len());
    if pred.is_empty() {
        return Prf::default();
    }
    let correct = pred.iter().zip(gold.iter()).filter(|(p, g)| p == g).count();
    let acc = correct as f64 / pred.len() as f64;
    Prf { precision: acc, recall: acc, f1: acc }
}

/// Per-class P/R/F1 for single-label predictions over `n_classes`.
pub fn per_class_prf(pred: &[u32], gold: &[u32], n_classes: usize) -> Vec<Prf> {
    assert_eq!(pred.len(), gold.len());
    let mut counts = vec![Counts::default(); n_classes];
    for (&p, &g) in pred.iter().zip(gold.iter()) {
        if p == g {
            counts[p as usize].tp += 1;
        } else {
            if (p as usize) < n_classes {
                counts[p as usize].fp += 1;
            }
            counts[g as usize].fn_ += 1;
        }
    }
    counts.iter().map(Counts::prf).collect()
}

/// Per-class P/R/F1 for multi-label predictions.
pub fn per_class_prf_multi(pred: &[Vec<u32>], gold: &[Vec<u32>], n_classes: usize) -> Vec<Prf> {
    assert_eq!(pred.len(), gold.len());
    let mut counts = vec![Counts::default(); n_classes];
    for (p, g) in pred.iter().zip(gold.iter()) {
        for &l in p {
            if g.contains(&l) {
                counts[l as usize].tp += 1;
            } else {
                counts[l as usize].fp += 1;
            }
        }
        for &l in g {
            if !p.contains(&l) {
                counts[l as usize].fn_ += 1;
            }
        }
    }
    counts.iter().map(Counts::prf).collect()
}

/// Macro F1: unweighted mean of per-class F1 over classes that actually
/// occur in the gold labels (Sato's protocol).
pub fn macro_f1(pred: &[u32], gold: &[u32], n_classes: usize) -> f64 {
    let per = per_class_prf(pred, gold, n_classes);
    let mut sum = 0.0;
    let mut n = 0usize;
    for c in 0..n_classes {
        if gold.iter().any(|&g| g as usize == c) {
            sum += per[c].f1;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Class support (gold occurrence counts) for reporting.
pub fn class_support(gold: &[u32], n_classes: usize) -> Vec<usize> {
    let mut s = vec![0usize; n_classes];
    for &g in gold {
        s[g as usize] += 1;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_score_one() {
        let pred = vec![vec![0, 1], vec![2]];
        let gold = pred.clone();
        let m = multi_label_micro(&pred, &gold);
        assert_eq!(m.f1, 1.0);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
    }

    #[test]
    fn disjoint_predictions_score_zero() {
        let pred = vec![vec![0u32]];
        let gold = vec![vec![1u32]];
        let m = multi_label_micro(&pred, &gold);
        assert_eq!(m.f1, 0.0);
    }

    #[test]
    fn micro_counts_are_pairwise() {
        // pred {0,1} vs gold {1,2}: tp=1 (label 1), fp=1 (label 0), fn=1 (2).
        let m = multi_label_micro(&[vec![0, 1]], &[vec![1, 2]]);
        assert!((m.precision - 0.5).abs() < 1e-9);
        assert!((m.recall - 0.5).abs() < 1e-9);
        assert!((m.f1 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn multi_class_micro_is_accuracy() {
        let m = multi_class_micro(&[0, 1, 2, 2], &[0, 1, 1, 2]);
        assert!((m.f1 - 0.75).abs() < 1e-9);
    }

    #[test]
    fn per_class_prf_basic() {
        // gold: [0,0,1], pred: [0,1,1]
        let per = per_class_prf(&[0, 1, 1], &[0, 0, 1], 2);
        // class 0: tp=1, fn=1, fp=0 -> p=1, r=0.5, f1=2/3
        assert!((per[0].f1 - 2.0 / 3.0).abs() < 1e-9);
        // class 1: tp=1, fp=1, fn=0 -> p=0.5, r=1 -> f1=2/3
        assert!((per[1].f1 - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn macro_ignores_absent_classes() {
        // Class 2 never appears in gold; macro over classes 0 and 1 only.
        let m = macro_f1(&[0, 1], &[0, 1], 3);
        assert_eq!(m, 1.0);
    }

    #[test]
    fn macro_differs_from_micro_under_imbalance() {
        // 9 correct majority, 1 wrong minority.
        let gold: Vec<u32> = (0..10).map(|i| if i < 9 { 0 } else { 1 }).collect();
        let pred: Vec<u32> = vec![0; 10];
        let micro = multi_class_micro(&pred, &gold).f1;
        let mac = macro_f1(&pred, &gold, 2);
        assert!(micro > 0.89);
        assert!(mac < 0.5, "macro punishes the missed minority class: {mac}");
    }

    #[test]
    fn counts_merge() {
        let mut a = Counts::default();
        a.add(&[0], &[0]);
        let mut b = Counts::default();
        b.add(&[1], &[2]);
        a.merge(b);
        assert_eq!((a.tp, a.fp, a.fn_), (1, 1, 1));
    }

    #[test]
    fn per_class_multi_label() {
        let per = per_class_prf_multi(&[vec![0, 1]], &[vec![0]], 2);
        assert_eq!(per[0].f1, 1.0);
        assert_eq!(per[1].f1, 0.0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(multi_class_micro(&[], &[]).f1, 0.0);
        let m = multi_label_micro(&[], &[]);
        assert_eq!(m.f1, 0.0);
    }
}
