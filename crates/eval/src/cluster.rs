//! k-means clustering and cluster-quality metrics for the §7 case study.
//!
//! The paper evaluates column clusterings with Homogeneity ("precision"),
//! Completeness ("recall") and V-Measure ("F1") against a 15-cluster ground
//! truth, running the same k-means over every embedding method.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Plain k-means with k-means++ style seeding. Returns a cluster id per
/// point. Deterministic in `seed`.
pub fn kmeans(points: &[Vec<f32>], k: usize, iters: usize, seed: u64) -> Vec<usize> {
    assert!(!points.is_empty(), "kmeans on empty input");
    let k = k.min(points.len());
    let dim = points[0].len();
    assert!(points.iter().all(|p| p.len() == dim), "ragged embedding dims");
    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++ seeding.
    let mut centers: Vec<Vec<f32>> = Vec::with_capacity(k);
    centers.push(points[rng.gen_range(0..points.len())].clone());
    while centers.len() < k {
        let d2: Vec<f32> = points
            .iter()
            .map(|p| centers.iter().map(|c| sq_dist(p, c)).fold(f32::INFINITY, f32::min))
            .collect();
        let total: f32 = d2.iter().sum();
        if total <= 0.0 {
            // All points coincide with centers; duplicate one.
            centers.push(points[rng.gen_range(0..points.len())].clone());
            continue;
        }
        let mut x = rng.gen_range(0.0..total);
        let mut chosen = 0;
        for (i, &d) in d2.iter().enumerate() {
            if x < d {
                chosen = i;
                break;
            }
            x -= d;
        }
        centers.push(points[chosen].clone());
    }

    let mut assign = vec![0usize; points.len()];
    for _ in 0..iters {
        // Assignment step.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..centers.len())
                .min_by(|&a, &b| {
                    sq_dist(p, &centers[a])
                        .partial_cmp(&sq_dist(p, &centers[b]))
                        .expect("finite distances")
                })
                .expect("k >= 1");
            if assign[i] != best {
                assign[i] = best;
                changed = true;
            }
        }
        // Update step.
        let mut sums = vec![vec![0.0f32; dim]; centers.len()];
        let mut counts = vec![0usize; centers.len()];
        for (i, p) in points.iter().enumerate() {
            counts[assign[i]] += 1;
            for (s, &v) in sums[assign[i]].iter_mut().zip(p.iter()) {
                *s += v;
            }
        }
        for (c, (sum, &count)) in centers.iter_mut().zip(sums.iter().zip(&counts)) {
            if count > 0 {
                for (cv, &sv) in c.iter_mut().zip(sum.iter()) {
                    *cv = sv / count as f32;
                }
            }
        }
        if !changed {
            break;
        }
    }
    assign
}

fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Entropy of a labeling (natural log).
fn entropy(labels: &[usize]) -> f64 {
    let n = labels.len() as f64;
    let mut counts = std::collections::HashMap::new();
    for &l in labels {
        *counts.entry(l).or_insert(0usize) += 1;
    }
    -counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            p * p.ln()
        })
        .sum::<f64>()
}

/// Conditional entropy H(gold | pred).
fn conditional_entropy(gold: &[usize], pred: &[usize]) -> f64 {
    let n = gold.len() as f64;
    let mut joint = std::collections::HashMap::new();
    let mut pred_counts = std::collections::HashMap::new();
    for (&g, &p) in gold.iter().zip(pred.iter()) {
        *joint.entry((p, g)).or_insert(0usize) += 1;
        *pred_counts.entry(p).or_insert(0usize) += 1;
    }
    -joint
        .iter()
        .map(|(&(p, _), &c)| {
            let pc = pred_counts[&p] as f64;
            (c as f64 / n) * ((c as f64) / pc).ln()
        })
        .sum::<f64>()
}

/// Homogeneity: each predicted cluster contains only members of one gold
/// class (the paper reports it as "Precision").
pub fn homogeneity(gold: &[usize], pred: &[usize]) -> f64 {
    assert_eq!(gold.len(), pred.len());
    let h_gold = entropy(gold);
    if h_gold == 0.0 {
        return 1.0;
    }
    1.0 - conditional_entropy(gold, pred) / h_gold
}

/// Completeness: all members of a gold class land in one predicted cluster
/// ("Recall").
pub fn completeness(gold: &[usize], pred: &[usize]) -> f64 {
    homogeneity(pred, gold)
}

/// V-Measure: harmonic mean of homogeneity and completeness ("F1").
pub fn v_measure(gold: &[usize], pred: &[usize]) -> f64 {
    let h = homogeneity(gold, pred);
    let c = completeness(gold, pred);
    if h + c == 0.0 {
        0.0
    } else {
        2.0 * h * c / (h + c)
    }
}

/// Builds a clustering from pairwise matches via connected components —
/// the protocol the paper uses to turn schema-matcher output (COMA,
/// DistributionBased) into cluster labels. `n` is the number of columns,
/// `matches` the matched index pairs.
pub fn connected_components(n: usize, matches: &[(usize, usize)]) -> Vec<usize> {
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    for &(a, b) in matches {
        let ra = find(&mut parent, a);
        let rb = find(&mut parent, b);
        if ra != rb {
            parent[ra] = rb;
        }
    }
    // Relabel roots densely.
    let mut label = std::collections::HashMap::new();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let r = find(&mut parent, i);
        let next = label.len();
        out.push(*label.entry(r).or_insert(next));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmeans_separates_obvious_blobs() {
        let mut pts = Vec::new();
        for i in 0..20 {
            let off = if i % 2 == 0 { 0.0 } else { 10.0 };
            pts.push(vec![off + (i as f32) * 0.01, off]);
        }
        let assign = kmeans(&pts, 2, 50, 1);
        // All even-index points together, all odd together.
        let c0 = assign[0];
        let c1 = assign[1];
        assert_ne!(c0, c1);
        for (i, &a) in assign.iter().enumerate() {
            assert_eq!(a, if i % 2 == 0 { c0 } else { c1 });
        }
    }

    #[test]
    fn kmeans_is_deterministic() {
        let pts: Vec<Vec<f32>> = (0..30).map(|i| vec![(i % 7) as f32, (i % 3) as f32]).collect();
        assert_eq!(kmeans(&pts, 4, 30, 9), kmeans(&pts, 4, 30, 9));
    }

    #[test]
    fn perfect_clustering_scores_one() {
        let gold = vec![0, 0, 1, 1, 2, 2];
        assert!((homogeneity(&gold, &gold) - 1.0).abs() < 1e-9);
        assert!((completeness(&gold, &gold) - 1.0).abs() < 1e-9);
        assert!((v_measure(&gold, &gold) - 1.0).abs() < 1e-9);
        // Label permutation does not matter.
        let perm = vec![2, 2, 0, 0, 1, 1];
        assert!((v_measure(&gold, &perm) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_cluster_prediction_is_complete_not_homogeneous() {
        let gold = vec![0, 0, 1, 1];
        let pred = vec![0, 0, 0, 0];
        assert!((completeness(&gold, &pred) - 1.0).abs() < 1e-9);
        assert!(homogeneity(&gold, &pred) < 0.1);
    }

    #[test]
    fn all_singletons_is_homogeneous_not_complete() {
        let gold = vec![0, 0, 1, 1];
        let pred = vec![0, 1, 2, 3];
        assert!((homogeneity(&gold, &pred) - 1.0).abs() < 1e-9);
        assert!(completeness(&gold, &pred) < 0.6);
    }

    #[test]
    fn v_measure_between_zero_and_one() {
        let gold = vec![0, 1, 2, 0, 1, 2, 0, 1];
        let pred = vec![0, 0, 1, 1, 2, 2, 0, 1];
        let v = v_measure(&gold, &pred);
        assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn connected_components_merge_transitively() {
        let cc = connected_components(5, &[(0, 1), (1, 2)]);
        assert_eq!(cc[0], cc[1]);
        assert_eq!(cc[1], cc[2]);
        assert_ne!(cc[0], cc[3]);
        assert_ne!(cc[3], cc[4]);
    }

    #[test]
    fn connected_components_no_matches_all_singletons() {
        let cc = connected_components(4, &[]);
        let uniq: std::collections::HashSet<_> = cc.iter().collect();
        assert_eq!(uniq.len(), 4);
    }
}
