//! Inter-column attention-dependency aggregation (Appendix A.4, Figure 6).
//!
//! The paper averages last-layer `[CLS]`→`[CLS]` attention weights per
//! (column-type, column-type) pair over a whole dataset, then normalizes by
//! type co-occurrence so the reference point is zero: positive entries mean
//! type *i* draws its contextualized representation from type *j* more than
//! co-occurrence alone explains.

#![allow(clippy::needless_range_loop)] // index loops over matrix coordinates are clearest here
/// Accumulates attention mass between column-type pairs.
#[derive(Clone, Debug)]
pub struct DependencyAccumulator {
    n: usize,
    sum: Vec<f64>,
    count: Vec<u64>,
}

impl DependencyAccumulator {
    pub fn new(n_types: usize) -> Self {
        DependencyAccumulator {
            n: n_types,
            sum: vec![0.0; n_types * n_types],
            count: vec![0; n_types * n_types],
        }
    }

    /// Records one attention observation: column of type `from` attended to
    /// a column of type `to` with weight `w`.
    pub fn add(&mut self, from: usize, to: usize, w: f64) {
        assert!(from < self.n && to < self.n);
        self.sum[from * self.n + to] += w;
        self.count[from * self.n + to] += 1;
    }

    pub fn n_types(&self) -> usize {
        self.n
    }

    /// Pairs that co-occurred at least once.
    pub fn observed_pairs(&self) -> usize {
        self.count.iter().filter(|&&c| c > 0).count()
    }

    /// The Figure 6 matrix: mean attention per pair, centred so the average
    /// observed entry is zero. Unobserved pairs are `NaN`.
    pub fn normalized(&self) -> Vec<f64> {
        let mut avg = vec![f64::NAN; self.n * self.n];
        let mut total = 0.0;
        let mut n_obs = 0usize;
        for i in 0..self.n * self.n {
            if self.count[i] > 0 {
                let a = self.sum[i] / self.count[i] as f64;
                avg[i] = a;
                total += a;
                n_obs += 1;
            }
        }
        if n_obs == 0 {
            return avg;
        }
        let mean = total / n_obs as f64;
        for v in avg.iter_mut() {
            if v.is_finite() {
                *v -= mean;
            }
        }
        avg
    }

    /// Convenience accessor into [`DependencyAccumulator::normalized`].
    pub fn dependency(&self, from: usize, to: usize) -> f64 {
        self.normalized()[from * self.n + to]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_centers_observed_entries() {
        let mut acc = DependencyAccumulator::new(2);
        acc.add(0, 1, 0.9);
        acc.add(0, 1, 0.7);
        acc.add(1, 0, 0.2);
        let m = acc.normalized();
        // avg(0,1) = 0.8, avg(1,0) = 0.2, mean = 0.5.
        assert!((m[1] - 0.3).abs() < 1e-9);
        assert!((m[2] + 0.3).abs() < 1e-9);
        assert!(m[0].is_nan(), "unobserved pairs are NaN");
        assert_eq!(acc.observed_pairs(), 2);
    }

    #[test]
    fn asymmetry_is_preserved() {
        // The paper stresses the matrix is NOT symmetric (age relies on
        // origin but not vice versa).
        let mut acc = DependencyAccumulator::new(2);
        acc.add(0, 1, 1.0);
        acc.add(1, 0, 0.0);
        assert!(acc.dependency(0, 1) > acc.dependency(1, 0));
    }

    #[test]
    fn empty_accumulator_is_all_nan() {
        let acc = DependencyAccumulator::new(3);
        assert!(acc.normalized().iter().all(|v| v.is_nan()));
        assert_eq!(acc.observed_pairs(), 0);
    }
}
