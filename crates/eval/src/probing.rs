//! LM-probing bookkeeping (Appendix A.5, Tables 12-13).
//!
//! The transformer crate scores filled templates with pseudo-perplexity;
//! this module aggregates those scores into the paper's two statistics per
//! class: **average rank** of the true class among all candidates, and
//! **PPL / Avg. PPL** (the true class's perplexity normalized by the mean
//! perplexity over all candidates for that item).

/// One probed item: the candidate perplexities and which candidate is true.
#[derive(Clone, Debug)]
pub struct ProbeItem {
    /// Perplexity per candidate class (aligned with the candidate list).
    pub ppls: Vec<f32>,
    /// Index of the ground-truth candidate.
    pub true_idx: usize,
}

impl ProbeItem {
    /// 1-based rank of the true candidate (ties broken pessimistically:
    /// equal-scoring candidates count as ranked ahead).
    pub fn rank(&self) -> usize {
        let t = self.ppls[self.true_idx];
        1 + self.ppls.iter().enumerate().filter(|&(i, &p)| i != self.true_idx && p <= t).count()
    }

    /// PPL of the truth divided by the mean candidate PPL (< 1 means the LM
    /// finds the truth more natural than average).
    pub fn normalized_ppl(&self) -> f32 {
        let finite: Vec<f32> = self.ppls.iter().copied().filter(|p| p.is_finite()).collect();
        if finite.is_empty() {
            return f32::NAN;
        }
        let avg = finite.iter().sum::<f32>() / finite.len() as f32;
        self.ppls[self.true_idx] / avg
    }
}

/// Aggregated probing statistics for one class.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassProbeStats {
    pub class: String,
    pub avg_rank: f64,
    pub avg_norm_ppl: f64,
    pub n_items: usize,
}

/// Aggregates per-item probes grouped by class name.
pub fn aggregate_probes(items: &[(String, ProbeItem)]) -> Vec<ClassProbeStats> {
    let mut by_class: std::collections::BTreeMap<&str, (f64, f64, usize)> =
        std::collections::BTreeMap::new();
    for (class, item) in items {
        let e = by_class.entry(class).or_insert((0.0, 0.0, 0));
        e.0 += item.rank() as f64;
        let np = item.normalized_ppl();
        if np.is_finite() {
            e.1 += np as f64;
        }
        e.2 += 1;
    }
    by_class
        .into_iter()
        .map(|(class, (rank_sum, ppl_sum, n))| ClassProbeStats {
            class: class.to_string(),
            avg_rank: rank_sum / n as f64,
            avg_norm_ppl: ppl_sum / n as f64,
            n_items: n,
        })
        .collect()
}

/// Sorts stats by average rank and returns `(top_k, bottom_k)` — the paper's
/// Top-5 / Bottom-5 presentation.
pub fn top_bottom(
    mut stats: Vec<ClassProbeStats>,
    k: usize,
) -> (Vec<ClassProbeStats>, Vec<ClassProbeStats>) {
    stats.sort_by(|a, b| a.avg_rank.partial_cmp(&b.avg_rank).expect("finite ranks"));
    let top: Vec<_> = stats.iter().take(k).cloned().collect();
    let bottom: Vec<_> = stats.iter().rev().take(k).cloned().collect();
    (top, bottom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_counts_better_candidates() {
        let item = ProbeItem { ppls: vec![5.0, 2.0, 8.0, 1.0], true_idx: 0 };
        // Candidates with ppl <= 5.0 besides the truth: 2.0 and 1.0 -> rank 3.
        assert_eq!(item.rank(), 3);
        let best = ProbeItem { ppls: vec![1.0, 2.0, 3.0], true_idx: 0 };
        assert_eq!(best.rank(), 1);
    }

    #[test]
    fn normalized_ppl_below_one_means_natural() {
        let item = ProbeItem { ppls: vec![1.0, 3.0, 5.0], true_idx: 0 };
        assert!(item.normalized_ppl() < 1.0);
        let worst = ProbeItem { ppls: vec![1.0, 3.0, 5.0], true_idx: 2 };
        assert!(worst.normalized_ppl() > 1.0);
    }

    #[test]
    fn aggregate_groups_by_class() {
        let items = vec![
            ("river".to_string(), ProbeItem { ppls: vec![1.0, 2.0], true_idx: 0 }),
            ("river".to_string(), ProbeItem { ppls: vec![2.0, 1.0], true_idx: 0 }),
            ("kingdom".to_string(), ProbeItem { ppls: vec![9.0, 1.0], true_idx: 0 }),
        ];
        let stats = aggregate_probes(&items);
        assert_eq!(stats.len(), 2);
        let river = stats.iter().find(|s| s.class == "river").unwrap();
        assert_eq!(river.n_items, 2);
        assert!((river.avg_rank - 1.5).abs() < 1e-9);
        let kingdom = stats.iter().find(|s| s.class == "kingdom").unwrap();
        assert_eq!(kingdom.avg_rank, 2.0);
    }

    #[test]
    fn top_bottom_partitions() {
        let stats: Vec<ClassProbeStats> = (0..10)
            .map(|i| ClassProbeStats {
                class: format!("c{i}"),
                avg_rank: i as f64,
                avg_norm_ppl: 1.0,
                n_items: 1,
            })
            .collect();
        let (top, bottom) = top_bottom(stats, 3);
        assert_eq!(top[0].class, "c0");
        assert_eq!(bottom[0].class, "c9");
        assert_eq!(top.len(), 3);
        assert_eq!(bottom.len(), 3);
    }

    #[test]
    fn infinite_ppls_are_ignored_in_normalization() {
        let item = ProbeItem { ppls: vec![2.0, f32::INFINITY, 4.0], true_idx: 0 };
        assert!((item.normalized_ppl() - 2.0 / 3.0).abs() < 1e-6);
    }
}
