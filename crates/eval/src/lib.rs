//! # doduo-eval
//!
//! Evaluation machinery for the DODUO reproduction:
//!
//! * [`metrics`] — micro/macro precision, recall and F1 for multi-label
//!   (WikiTable) and multi-class (VizNet) column annotation (§5.3).
//! * [`cluster`] — k-means plus Homogeneity / Completeness / V-Measure for
//!   the §7 case study, and connected-components construction of cluster
//!   labels from schema-matcher output.
//! * [`probing`] — average rank / normalized-perplexity aggregation for the
//!   LM-probing analysis (Tables 12-13).
//! * [`attention`] — co-occurrence-normalized inter-column attention
//!   dependency (Figure 6).

pub mod attention;
pub mod cluster;
pub mod metrics;
pub mod probing;

pub use attention::DependencyAccumulator;
pub use cluster::{completeness, connected_components, homogeneity, kmeans, v_measure};
pub use metrics::{
    class_support, macro_f1, multi_class_micro, multi_label_micro, per_class_prf,
    per_class_prf_multi, Counts, Prf,
};
pub use probing::{aggregate_probes, top_bottom, ClassProbeStats, ProbeItem};
