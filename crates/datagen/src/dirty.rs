//! Dirty-data injection (the paper's §B "Clean data vs. dirty data"
//! limitation): DODUO assumes "correct and clean" table values; follow-up
//! work on LM-based data tasks reports robustness to missing or misplaced
//! values. This module corrupts tables in controlled ways so that
//! robustness can be measured (the `ablation_dirty` experiment binary).

use crate::kb::KnowledgeBase;
use doduo_table::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What fraction of cells receive each corruption.
#[derive(Clone, Debug)]
pub struct DirtyConfig {
    /// Cell emptied ("missing value").
    pub missing: f64,
    /// Cell swapped with a random cell from a *different column* of the same
    /// table ("misplaced value").
    pub misplaced: f64,
    /// One character typo (swap of two adjacent characters).
    pub typo: f64,
    pub seed: u64,
}

impl DirtyConfig {
    /// A mild corruption level (≈10% of cells affected overall).
    pub fn mild(seed: u64) -> Self {
        DirtyConfig { missing: 0.04, misplaced: 0.03, typo: 0.03, seed }
    }

    /// A heavy corruption level (≈30% of cells affected overall).
    pub fn heavy(seed: u64) -> Self {
        DirtyConfig { missing: 0.12, misplaced: 0.09, typo: 0.09, seed }
    }

    /// Total corruption probability per cell.
    pub fn total(&self) -> f64 {
        self.missing + self.misplaced + self.typo
    }
}

fn typo(s: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < 2 {
        return s.to_string();
    }
    let i = rng.gen_range(0..chars.len() - 1);
    let mut out = chars;
    out.swap(i, i + 1);
    out.into_iter().collect()
}

/// Returns a corrupted copy of the dataset; annotations are untouched (the
/// evaluation question is whether models still recover them).
pub fn corrupt_dataset(ds: &Dataset, cfg: &DirtyConfig) -> Dataset {
    assert!(cfg.total() <= 1.0, "corruption probabilities exceed 1");
    let mut out = ds.clone();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    for at in &mut out.tables {
        let n_cols = at.table.n_cols();
        for c in 0..n_cols {
            for r in 0..at.table.columns[c].values.len() {
                let x: f64 = rng.gen();
                if x < cfg.missing {
                    at.table.columns[c].values[r] = String::new();
                } else if x < cfg.missing + cfg.misplaced && n_cols > 1 {
                    // Swap with a random cell of another column.
                    let mut oc = rng.gen_range(0..n_cols);
                    if oc == c {
                        oc = (oc + 1) % n_cols;
                    }
                    if !at.table.columns[oc].values.is_empty() {
                        let orow = rng.gen_range(0..at.table.columns[oc].values.len());
                        let tmp = at.table.columns[c].values[r].clone();
                        at.table.columns[c].values[r] = at.table.columns[oc].values[orow].clone();
                        at.table.columns[oc].values[orow] = tmp;
                    }
                } else if x < cfg.total() {
                    let v = at.table.columns[c].values[r].clone();
                    at.table.columns[c].values[r] = typo(&v, &mut rng);
                }
            }
        }
    }
    out
}

/// Measures the realized corruption rate (fraction of cells that differ
/// from the clean dataset) — used by tests and reports.
pub fn corruption_rate(clean: &Dataset, dirty: &Dataset) -> f64 {
    let mut total = 0usize;
    let mut changed = 0usize;
    for (a, b) in clean.tables.iter().zip(dirty.tables.iter()) {
        for (ca, cb) in a.table.columns.iter().zip(b.table.columns.iter()) {
            for (va, vb) in ca.values.iter().zip(cb.values.iter()) {
                total += 1;
                changed += usize::from(va != vb);
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        changed as f64 / total as f64
    }
}

/// Convenience: generate a corrupted WikiTable-style benchmark directly.
pub fn dirty_wikitable(
    kb: &KnowledgeBase,
    wiki_cfg: &crate::wikitable::WikiTableConfig,
    dirty_cfg: &DirtyConfig,
) -> Dataset {
    corrupt_dataset(&crate::wikitable::generate_wikitable(kb, wiki_cfg), dirty_cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::KbConfig;
    use crate::wikitable::{generate_wikitable, WikiTableConfig};

    fn clean() -> Dataset {
        let kb = KnowledgeBase::generate(&KbConfig::default(), 42);
        generate_wikitable(&kb, &WikiTableConfig { n_tables: 60, ..Default::default() })
    }

    #[test]
    fn corruption_rate_tracks_config() {
        let ds = clean();
        let mild = corrupt_dataset(&ds, &DirtyConfig::mild(1));
        let heavy = corrupt_dataset(&ds, &DirtyConfig::heavy(1));
        let r_mild = corruption_rate(&ds, &mild);
        let r_heavy = corruption_rate(&ds, &heavy);
        // Typos on 1-char cells and swaps with identical values can no-op,
        // so the realized rate sits at or below the configured rate.
        assert!(r_mild > 0.03 && r_mild < 0.15, "mild rate {r_mild}");
        assert!(r_heavy > 0.15 && r_heavy < 0.40, "heavy rate {r_heavy}");
        assert!(r_heavy > r_mild);
    }

    #[test]
    fn annotations_are_preserved() {
        let ds = clean();
        let dirty = corrupt_dataset(&ds, &DirtyConfig::heavy(2));
        dirty.validate().expect("corrupted dataset stays structurally valid");
        for (a, b) in ds.tables.iter().zip(dirty.tables.iter()) {
            assert_eq!(a.col_types, b.col_types);
            assert_eq!(a.relations, b.relations);
            assert_eq!(a.table.n_cols(), b.table.n_cols());
            assert_eq!(a.table.n_rows(), b.table.n_rows());
        }
    }

    #[test]
    fn corruption_is_deterministic() {
        let ds = clean();
        let a = corrupt_dataset(&ds, &DirtyConfig::mild(7));
        let b = corrupt_dataset(&ds, &DirtyConfig::mild(7));
        for (x, y) in a.tables.iter().zip(b.tables.iter()) {
            assert_eq!(x.table, y.table);
        }
    }

    #[test]
    fn typo_swaps_adjacent_chars() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = typo("abcd", &mut rng);
        assert_eq!(t.len(), 4);
        assert_ne!(t, "abcd");
        let mut sorted: Vec<char> = t.chars().collect();
        sorted.sort_unstable();
        assert_eq!(sorted, vec!['a', 'b', 'c', 'd']);
        assert_eq!(typo("x", &mut rng), "x", "single chars are left alone");
    }

    #[test]
    fn zero_config_is_identity() {
        let ds = clean();
        let same =
            corrupt_dataset(&ds, &DirtyConfig { missing: 0.0, misplaced: 0.0, typo: 0.0, seed: 1 });
        assert_eq!(corruption_rate(&ds, &same), 0.0);
    }
}
