//! WikiTable-style benchmark generator.
//!
//! Mirrors the TURL/WikiTable benchmark used in §5.1: tables drawn from the
//! knowledge base, *multi-label* Freebase-style column types, and relation
//! annotations connecting the table's subject column (index 0) to each other
//! column. The vocabulary is scaled down from 255 types / 121 relations to
//! ~40 / ~30 (DESIGN.md §1) but keeps the classes the paper analyses by name
//! (Tables 10 and 12): `music.artist`, `music.writer`,
//! `american_football.*`, `film.film.produced_by`,
//! `people.person.place_of_birth`, and so on.

use crate::kb::{KnowledgeBase, Profession};
use doduo_table::{AnnotatedTable, Column, Dataset, LabelVocab, RelAnnotation, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generation knobs.
#[derive(Clone, Debug)]
pub struct WikiTableConfig {
    pub n_tables: usize,
    pub min_rows: usize,
    pub max_rows: usize,
    pub seed: u64,
}

impl Default for WikiTableConfig {
    fn default() -> Self {
        WikiTableConfig { n_tables: 900, min_rows: 3, max_rows: 5, seed: 42 }
    }
}

/// Context threaded through schema generators.
struct Gen<'a> {
    kb: &'a KnowledgeBase,
    types: &'a mut LabelVocab,
    rels: &'a mut LabelVocab,
}

impl Gen<'_> {
    fn ty(&mut self, names: &[&str]) -> Vec<u32> {
        names.iter().map(|n| self.types.intern(n)).collect()
    }

    fn rel(&mut self, name: &str) -> u32 {
        self.rels.intern(name)
    }
}

/// Samples `n` distinct indices from `0..len` (with replacement if the pool
/// is smaller than `n`).
fn sample_distinct(rng: &mut StdRng, len: usize, n: usize) -> Vec<usize> {
    if len <= n {
        return (0..len).cycle().take(n).collect();
    }
    let mut picked = Vec::with_capacity(n);
    while picked.len() < n {
        let i = rng.gen_range(0..len);
        if !picked.contains(&i) {
            picked.push(i);
        }
    }
    picked
}

type SchemaFn = fn(&mut Gen<'_>, &mut StdRng, usize, usize) -> AnnotatedTable;

fn relation(object_col: usize, relation: u32) -> RelAnnotation {
    RelAnnotation { subject_col: 0, object_col, relation }
}

// ---------------------------------------------------------------- schemas

/// `[film, director, producer, country]` — the Figure 2(a) table.
fn film_table(g: &mut Gen<'_>, rng: &mut StdRng, rows: usize, id: usize) -> AnnotatedTable {
    let films = sample_distinct(rng, g.kb.films.len(), rows);
    let mut titles = Vec::new();
    let mut directors = Vec::new();
    let mut producers = Vec::new();
    let mut countries = Vec::new();
    for &fi in &films {
        let f = &g.kb.films[fi];
        titles.push(f.title.clone());
        directors.push(
            f.directors
                .iter()
                .map(|&d| g.kb.person_name(d).to_string())
                .collect::<Vec<_>>()
                .join(", "),
        );
        producers.push(
            f.producers
                .iter()
                .map(|&p| g.kb.person_name(p).to_string())
                .collect::<Vec<_>>()
                .join(", "),
        );
        countries.push(g.kb.country_name(f.country).to_string());
    }
    AnnotatedTable {
        table: Table::new(
            format!("wiki-film-{id}"),
            vec![
                Column::with_name("film", titles),
                Column::with_name("director", directors),
                Column::with_name("producer", producers),
                Column::with_name("country", countries),
            ],
        ),
        col_types: vec![
            g.ty(&["film.film"]),
            g.ty(&["people.person", "film.director"]),
            g.ty(&["people.person", "film.producer"]),
            g.ty(&["location.location", "location.country"]),
        ],
        relations: vec![
            relation(1, g.rel("film.film.directed_by")),
            relation(2, g.rel("film.film.produced_by")),
            relation(3, g.rel("film.film.country")),
        ],
    }
}

/// `[film, story writer, production company]`.
fn film_story_table(g: &mut Gen<'_>, rng: &mut StdRng, rows: usize, id: usize) -> AnnotatedTable {
    let films = sample_distinct(rng, g.kb.films.len(), rows);
    let mut titles = Vec::new();
    let mut writers = Vec::new();
    let mut companies = Vec::new();
    for &fi in &films {
        let f = &g.kb.films[fi];
        titles.push(f.title.clone());
        writers.push(g.kb.person_name(f.story_by).to_string());
        companies.push(g.kb.companies[f.production_company].name.clone());
    }
    AnnotatedTable {
        table: Table::new(
            format!("wiki-story-{id}"),
            vec![
                Column::with_name("film", titles),
                Column::with_name("story by", writers),
                Column::with_name("production company", companies),
            ],
        ),
        col_types: vec![
            g.ty(&["film.film"]),
            g.ty(&["people.person", "film.writer"]),
            g.ty(&["business.company"]),
        ],
        relations: vec![
            relation(1, g.rel("film.film.story_by")),
            relation(2, g.rel("film.film.production_companies")),
        ],
    }
}

/// `[athlete, birthplace, team]` — the Figure 2(b) roster table.
fn roster_table(g: &mut Gen<'_>, rng: &mut StdRng, rows: usize, id: usize) -> AnnotatedTable {
    let pool = g.kb.people_with(Profession::FootballPlayer);
    let picks = sample_distinct(rng, pool.len(), rows);
    let mut names = Vec::new();
    let mut birth = Vec::new();
    let mut teams = Vec::new();
    for &i in &picks {
        let p = &g.kb.people[pool[i]];
        names.push(p.name.clone());
        birth.push(g.kb.city_name(p.birth_city).to_string());
        teams.push(g.kb.teams[p.team.expect("athletes have teams")].name.clone());
    }
    AnnotatedTable {
        table: Table::new(
            format!("wiki-roster-{id}"),
            vec![
                Column::with_name("player", names),
                Column::with_name("hometown", birth),
                Column::with_name("team", teams),
            ],
        ),
        col_types: vec![
            g.ty(&["people.person", "sports.pro_athlete"]),
            g.ty(&["location.location", "location.citytown"]),
            g.ty(&["sports.sports_team", "american_football.football_team"]),
        ],
        relations: vec![
            relation(1, g.rel("people.person.place_of_birth")),
            relation(2, g.rel("sports.pro_athlete.teams")),
        ],
    }
}

/// `[person, residence, nationality]`.
fn person_table(g: &mut Gen<'_>, rng: &mut StdRng, rows: usize, id: usize) -> AnnotatedTable {
    let picks = sample_distinct(rng, g.kb.people.len(), rows);
    let mut names = Vec::new();
    let mut lived = Vec::new();
    let mut nat = Vec::new();
    for &i in &picks {
        let p = &g.kb.people[i];
        names.push(p.name.clone());
        lived.push(g.kb.city_name(p.lived_city).to_string());
        nat.push(g.kb.country_name(p.nationality).to_string());
    }
    AnnotatedTable {
        table: Table::new(
            format!("wiki-person-{id}"),
            vec![
                Column::with_name("name", names),
                Column::with_name("residence", lived),
                Column::with_name("nationality", nat),
            ],
        ),
        col_types: vec![
            g.ty(&["people.person"]),
            g.ty(&["location.location", "location.citytown"]),
            g.ty(&["location.location", "location.country"]),
        ],
        relations: vec![
            relation(1, g.rel("people.person.place_lived")),
            relation(2, g.rel("people.person.nationality")),
        ],
    }
}

/// `[city, country, population]`.
fn city_table(g: &mut Gen<'_>, rng: &mut StdRng, rows: usize, id: usize) -> AnnotatedTable {
    let picks = sample_distinct(rng, g.kb.cities.len(), rows);
    let mut names = Vec::new();
    let mut countries = Vec::new();
    let mut pops = Vec::new();
    for &i in &picks {
        let c = &g.kb.cities[i];
        names.push(c.name.clone());
        countries.push(g.kb.country_name(c.country).to_string());
        pops.push(c.population.to_string());
    }
    AnnotatedTable {
        table: Table::new(
            format!("wiki-city-{id}"),
            vec![
                Column::with_name("city", names),
                Column::with_name("country", countries),
                Column::with_name("population", pops),
            ],
        ),
        col_types: vec![
            g.ty(&["location.location", "location.citytown"]),
            g.ty(&["location.location", "location.country"]),
            g.ty(&["topic.population"]),
        ],
        relations: vec![
            relation(1, g.rel("location.location.containedby")),
            relation(2, g.rel("location.statistical_region.population")),
        ],
    }
}

/// `[artist, genre, songwriter]` (Table 10's music classes).
fn music_table(g: &mut Gen<'_>, rng: &mut StdRng, rows: usize, id: usize) -> AnnotatedTable {
    let artists = g.kb.people_with(Profession::MusicArtist);
    let writers = g.kb.people_with(Profession::MusicWriter);
    let picks = sample_distinct(rng, artists.len(), rows);
    let mut names = Vec::new();
    let mut genres = Vec::new();
    let mut songwriters = Vec::new();
    for &i in &picks {
        names.push(g.kb.people[artists[i]].name.clone());
        genres.push(g.kb.genres[rng.gen_range(0..g.kb.genres.len())].to_string());
        songwriters.push(g.kb.people[writers[rng.gen_range(0..writers.len())]].name.clone());
    }
    AnnotatedTable {
        table: Table::new(
            format!("wiki-music-{id}"),
            vec![
                Column::with_name("artist", names),
                Column::with_name("genre", genres),
                Column::with_name("songwriter", songwriters),
            ],
        ),
        col_types: vec![
            g.ty(&["people.person", "music.artist"]),
            g.ty(&["music.genre"]),
            g.ty(&["people.person", "music.writer"]),
        ],
        relations: vec![
            relation(1, g.rel("music.artist.genre")),
            relation(2, g.rel("music.artist.songwriter")),
        ],
    }
}

/// `[football team, head coach, conference]` (Table 10's football classes).
fn football_table(g: &mut Gen<'_>, rng: &mut StdRng, rows: usize, id: usize) -> AnnotatedTable {
    let pool: Vec<usize> = (0..g.kb.teams.len()).filter(|&i| g.kb.teams[i].football).collect();
    let picks = sample_distinct(rng, pool.len(), rows);
    let mut names = Vec::new();
    let mut coaches = Vec::new();
    let mut confs = Vec::new();
    for &i in &picks {
        let t = &g.kb.teams[pool[i]];
        names.push(t.name.clone());
        coaches.push(g.kb.person_name(t.coach).to_string());
        confs.push(t.conference.to_string());
    }
    AnnotatedTable {
        table: Table::new(
            format!("wiki-football-{id}"),
            vec![
                Column::with_name("team", names),
                Column::with_name("head coach", coaches),
                Column::with_name("conference", confs),
            ],
        ),
        col_types: vec![
            g.ty(&["sports.sports_team", "american_football.football_team"]),
            g.ty(&["people.person", "american_football.football_coach"]),
            g.ty(&["american_football.football_conference"]),
        ],
        relations: vec![
            relation(1, g.rel("american_football.football_team.current_head_coach")),
            relation(2, g.rel("american_football.football_team.conference")),
        ],
    }
}

/// `[book, author, year]`.
fn book_table(g: &mut Gen<'_>, rng: &mut StdRng, rows: usize, id: usize) -> AnnotatedTable {
    let picks = sample_distinct(rng, g.kb.books.len(), rows);
    let mut titles = Vec::new();
    let mut authors = Vec::new();
    let mut years = Vec::new();
    for &i in &picks {
        let b = &g.kb.books[i];
        titles.push(b.title.clone());
        authors.push(g.kb.person_name(b.author).to_string());
        years.push(b.year.to_string());
    }
    AnnotatedTable {
        table: Table::new(
            format!("wiki-book-{id}"),
            vec![
                Column::with_name("title", titles),
                Column::with_name("author", authors),
                Column::with_name("year", years),
            ],
        ),
        col_types: vec![
            g.ty(&["book.book"]),
            g.ty(&["people.person", "book.author"]),
            g.ty(&["time.year"]),
        ],
        relations: vec![
            relation(1, g.rel("book.book.author")),
            relation(2, g.rel("book.book.first_published")),
        ],
    }
}

/// `[baseball player, position, team]` (Table 12's `position_s` relation).
fn baseball_table(g: &mut Gen<'_>, rng: &mut StdRng, rows: usize, id: usize) -> AnnotatedTable {
    let pool = g.kb.people_with(Profession::BaseballPlayer);
    let picks = sample_distinct(rng, pool.len(), rows);
    let mut names = Vec::new();
    let mut positions = Vec::new();
    let mut teams = Vec::new();
    for &i in &picks {
        let p = &g.kb.people[pool[i]];
        names.push(p.name.clone());
        positions.push(p.position.clone().expect("players have positions"));
        teams.push(g.kb.teams[p.team.expect("players have teams")].name.clone());
    }
    AnnotatedTable {
        table: Table::new(
            format!("wiki-baseball-{id}"),
            vec![
                Column::with_name("player", names),
                Column::with_name("position", positions),
                Column::with_name("team", teams),
            ],
        ),
        col_types: vec![
            g.ty(&["people.person", "baseball.baseball_player"]),
            g.ty(&["sports.position"]),
            g.ty(&["sports.sports_team"]),
        ],
        relations: vec![
            relation(1, g.rel("baseball.baseball_player.position_s")),
            relation(2, g.rel("sports.pro_athlete.teams")),
        ],
    }
}

/// `[city, airport, country]` (Table 12's `nearby_airports`).
fn airport_table(g: &mut Gen<'_>, rng: &mut StdRng, rows: usize, id: usize) -> AnnotatedTable {
    let pool: Vec<usize> =
        (0..g.kb.cities.len()).filter(|&i| g.kb.cities[i].airport.is_some()).collect();
    let picks = sample_distinct(rng, pool.len(), rows);
    let mut cities = Vec::new();
    let mut airports = Vec::new();
    let mut countries = Vec::new();
    for &i in &picks {
        let c = &g.kb.cities[pool[i]];
        cities.push(c.name.clone());
        airports.push(c.airport.clone().expect("filtered"));
        countries.push(g.kb.country_name(c.country).to_string());
    }
    AnnotatedTable {
        table: Table::new(
            format!("wiki-airport-{id}"),
            vec![
                Column::with_name("city", cities),
                Column::with_name("airport", airports),
                Column::with_name("country", countries),
            ],
        ),
        col_types: vec![
            g.ty(&["location.location", "location.citytown"]),
            g.ty(&["aviation.airport"]),
            g.ty(&["location.location", "location.country"]),
        ],
        relations: vec![
            relation(1, g.rel("location.location.nearby_airports")),
            relation(2, g.rel("location.location.containedby")),
        ],
    }
}

/// `[award, winner, nominee]` (Table 12's award relations).
fn award_table(g: &mut Gen<'_>, rng: &mut StdRng, rows: usize, id: usize) -> AnnotatedTable {
    let picks = sample_distinct(rng, g.kb.awards.len(), rows);
    let mut names = Vec::new();
    let mut winners = Vec::new();
    let mut nominees = Vec::new();
    for &i in &picks {
        let a = &g.kb.awards[i];
        names.push(a.name.clone());
        winners.push(g.kb.person_name(a.winner).to_string());
        nominees.push(g.kb.person_name(a.nominees[rng.gen_range(0..a.nominees.len())]).to_string());
    }
    AnnotatedTable {
        table: Table::new(
            format!("wiki-award-{id}"),
            vec![
                Column::with_name("award", names),
                Column::with_name("winner", winners),
                Column::with_name("nominee", nominees),
            ],
        ),
        col_types: vec![g.ty(&["award.award"]), g.ty(&["people.person"]), g.ty(&["people.person"])],
        relations: vec![
            relation(1, g.rel("award.award_honor.award_winner")),
            relation(2, g.rel("award.award.award_nominee")),
        ],
    }
}

/// `[tv program, country of origin, production company]`.
fn tv_table(g: &mut Gen<'_>, rng: &mut StdRng, rows: usize, id: usize) -> AnnotatedTable {
    let picks = sample_distinct(rng, g.kb.tv_programs.len(), rows);
    let mut names = Vec::new();
    let mut countries = Vec::new();
    let mut companies = Vec::new();
    for &i in &picks {
        let t = &g.kb.tv_programs[i];
        names.push(t.name.clone());
        countries.push(g.kb.country_name(t.country).to_string());
        companies.push(g.kb.companies[t.company].name.clone());
    }
    AnnotatedTable {
        table: Table::new(
            format!("wiki-tv-{id}"),
            vec![
                Column::with_name("program", names),
                Column::with_name("country", countries),
                Column::with_name("company", companies),
            ],
        ),
        col_types: vec![
            g.ty(&["tv.tv_program"]),
            g.ty(&["location.location", "location.country"]),
            g.ty(&["business.company"]),
        ],
        relations: vec![
            relation(1, g.rel("tv.tv_program.country_of_origin")),
            relation(2, g.rel("tv.tv_program.production_company")),
        ],
    }
}

/// `[election, country, year]` (Table 12's best-probed type).
fn election_table(g: &mut Gen<'_>, rng: &mut StdRng, rows: usize, id: usize) -> AnnotatedTable {
    let picks = sample_distinct(rng, g.kb.elections.len(), rows);
    let mut names = Vec::new();
    let mut countries = Vec::new();
    let mut years = Vec::new();
    for &i in &picks {
        let e = &g.kb.elections[i];
        names.push(e.name.clone());
        countries.push(g.kb.country_name(e.country).to_string());
        years.push(e.year.to_string());
    }
    AnnotatedTable {
        table: Table::new(
            format!("wiki-election-{id}"),
            vec![
                Column::with_name("election", names),
                Column::with_name("country", countries),
                Column::with_name("year", years),
            ],
        ),
        col_types: vec![
            g.ty(&["government.election"]),
            g.ty(&["location.location", "location.country"]),
            g.ty(&["time.year"]),
        ],
        relations: vec![
            relation(1, g.rel("government.election.country")),
            relation(2, g.rel("government.election.date")),
        ],
    }
}

/// `[university, city]`.
fn university_table(g: &mut Gen<'_>, rng: &mut StdRng, rows: usize, id: usize) -> AnnotatedTable {
    let picks = sample_distinct(rng, g.kb.universities.len(), rows);
    let mut names = Vec::new();
    let mut cities = Vec::new();
    for &i in &picks {
        let u = &g.kb.universities[i];
        names.push(u.name.clone());
        cities.push(g.kb.city_name(u.city).to_string());
    }
    AnnotatedTable {
        table: Table::new(
            format!("wiki-university-{id}"),
            vec![Column::with_name("university", names), Column::with_name("city", cities)],
        ),
        col_types: vec![
            g.ty(&["education.university"]),
            g.ty(&["location.location", "location.citytown"]),
        ],
        relations: vec![relation(1, g.rel("education.university.city"))],
    }
}

/// `[river, country, length]`.
fn river_table(g: &mut Gen<'_>, rng: &mut StdRng, rows: usize, id: usize) -> AnnotatedTable {
    let picks = sample_distinct(rng, g.kb.rivers.len(), rows);
    let mut names = Vec::new();
    let mut countries = Vec::new();
    let mut lengths = Vec::new();
    for &i in &picks {
        let r = &g.kb.rivers[i];
        names.push(r.name.clone());
        countries.push(g.kb.country_name(r.country).to_string());
        lengths.push(format!("{} km", r.length_km));
    }
    AnnotatedTable {
        table: Table::new(
            format!("wiki-river-{id}"),
            vec![
                Column::with_name("river", names),
                Column::with_name("country", countries),
                Column::with_name("length", lengths),
            ],
        ),
        col_types: vec![
            g.ty(&["geography.river"]),
            g.ty(&["location.location", "location.country"]),
            g.ty(&["measurement.length"]),
        ],
        relations: vec![
            relation(1, g.rel("geography.river.basin_country")),
            relation(2, g.rel("geography.river.length")),
        ],
    }
}

/// `[monarch, kingdom, religion]` (Table 12's worst-probed types).
fn monarch_table(g: &mut Gen<'_>, rng: &mut StdRng, rows: usize, id: usize) -> AnnotatedTable {
    let picks = sample_distinct(rng, g.kb.kingdoms.len(), rows);
    let mut monarchs = Vec::new();
    let mut kingdoms = Vec::new();
    let mut religions = Vec::new();
    for &i in &picks {
        let k = &g.kb.kingdoms[i];
        monarchs.push(g.kb.person_name(k.monarch).to_string());
        kingdoms.push(k.name.clone());
        religions.push(g.kb.religions[rng.gen_range(0..g.kb.religions.len())].to_string());
    }
    AnnotatedTable {
        table: Table::new(
            format!("wiki-monarch-{id}"),
            vec![
                Column::with_name("monarch", monarchs),
                Column::with_name("kingdom", kingdoms),
                Column::with_name("religion", religions),
            ],
        ),
        col_types: vec![
            g.ty(&["people.person", "royalty.monarch"]),
            g.ty(&["royalty.kingdom"]),
            g.ty(&["religion.religion"]),
        ],
        relations: vec![
            relation(1, g.rel("royalty.monarch.kingdom")),
            relation(2, g.rel("people.person.religion")),
        ],
    }
}

/// `[country, language]` (Table 12's `languages_spoken`).
fn language_table(g: &mut Gen<'_>, rng: &mut StdRng, rows: usize, id: usize) -> AnnotatedTable {
    let picks = sample_distinct(rng, g.kb.countries.len(), rows);
    let mut countries = Vec::new();
    let mut langs = Vec::new();
    for &i in &picks {
        countries.push(g.kb.countries[i].name.clone());
        langs.push(g.kb.countries[i].language.clone());
    }
    AnnotatedTable {
        table: Table::new(
            format!("wiki-language-{id}"),
            vec![Column::with_name("country", countries), Column::with_name("language", langs)],
        ),
        col_types: vec![
            g.ty(&["location.location", "location.country"]),
            g.ty(&["language.human_language"]),
        ],
        relations: vec![relation(1, g.rel("location.country.languages_spoken"))],
    }
}

/// `[invention, inventor, year]`.
fn invention_table(g: &mut Gen<'_>, rng: &mut StdRng, rows: usize, id: usize) -> AnnotatedTable {
    let picks = sample_distinct(rng, g.kb.inventions.len(), rows);
    let mut names = Vec::new();
    let mut inventors = Vec::new();
    let mut years = Vec::new();
    for &i in &picks {
        let inv = &g.kb.inventions[i];
        names.push(inv.name.clone());
        inventors.push(g.kb.person_name(inv.inventor).to_string());
        years.push(inv.year.to_string());
    }
    AnnotatedTable {
        table: Table::new(
            format!("wiki-invention-{id}"),
            vec![
                Column::with_name("invention", names),
                Column::with_name("inventor", inventors),
                Column::with_name("year", years),
            ],
        ),
        col_types: vec![g.ty(&["law.invention"]), g.ty(&["people.person"]), g.ty(&["time.year"])],
        relations: vec![
            relation(1, g.rel("law.invention.inventor")),
            relation(2, g.rel("law.invention.date")),
        ],
    }
}

/// `[organism, constellation?]` — no; `[organism, country]`: where a species
/// is found (fills the `biology.organism` / `astronomy.constellation`
/// probing classes with a nature/sky fact table).
fn nature_table(g: &mut Gen<'_>, rng: &mut StdRng, rows: usize, id: usize) -> AnnotatedTable {
    let picks = sample_distinct(rng, g.kb.organisms.len(), rows);
    let mut organisms = Vec::new();
    let mut countries = Vec::new();
    for &i in &picks {
        organisms.push(format!("the {}", g.kb.organisms[i]));
        countries.push(g.kb.countries[rng.gen_range(0..g.kb.countries.len())].name.clone());
    }
    AnnotatedTable {
        table: Table::new(
            format!("wiki-nature-{id}"),
            vec![Column::with_name("species", organisms), Column::with_name("range", countries)],
        ),
        col_types: vec![
            g.ty(&["biology.organism"]),
            g.ty(&["location.location", "location.country"]),
        ],
        relations: vec![relation(1, g.rel("biology.organism.found_in"))],
    }
}

/// `[constellation, month]` — sky observation tables.
fn sky_table(g: &mut Gen<'_>, rng: &mut StdRng, rows: usize, id: usize) -> AnnotatedTable {
    const MONTHS: [&str; 12] = [
        "january",
        "february",
        "march",
        "april",
        "may",
        "june",
        "july",
        "august",
        "september",
        "october",
        "november",
        "december",
    ];
    let picks = sample_distinct(rng, g.kb.constellations.len(), rows);
    let mut cons = Vec::new();
    let mut months = Vec::new();
    for &i in &picks {
        cons.push(g.kb.constellations[i].to_string());
        months.push(MONTHS[rng.gen_range(0..12usize)].to_string());
    }
    AnnotatedTable {
        table: Table::new(
            format!("wiki-sky-{id}"),
            vec![Column::with_name("constellation", cons), Column::with_name("best month", months)],
        ),
        col_types: vec![g.ty(&["astronomy.constellation"]), g.ty(&["time.month"])],
        relations: vec![relation(1, g.rel("astronomy.constellation.best_visible"))],
    }
}

const SCHEMAS: &[(SchemaFn, f32)] = &[
    (film_table, 2.0),
    (film_story_table, 1.2),
    (roster_table, 1.5),
    (person_table, 1.5),
    (city_table, 1.2),
    (music_table, 1.0),
    (football_table, 1.0),
    (book_table, 1.0),
    (baseball_table, 1.0),
    (airport_table, 0.8),
    (award_table, 0.8),
    (tv_table, 0.8),
    (election_table, 0.8),
    (university_table, 0.7),
    (river_table, 0.7),
    (monarch_table, 0.5),
    (language_table, 0.6),
    (invention_table, 0.4),
    (nature_table, 0.4),
    (sky_table, 0.4),
];

/// Generates the full WikiTable-style benchmark (tables + both vocabularies).
pub fn generate_wikitable(kb: &KnowledgeBase, cfg: &WikiTableConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut types = LabelVocab::new();
    let mut rels = LabelVocab::new();
    let total_weight: f32 = SCHEMAS.iter().map(|s| s.1).sum();
    let mut tables = Vec::with_capacity(cfg.n_tables);
    for id in 0..cfg.n_tables {
        // Weighted schema pick.
        let mut x = rng.gen_range(0.0..total_weight);
        let mut chosen = SCHEMAS[0].0;
        for &(f, w) in SCHEMAS {
            if x < w {
                chosen = f;
                break;
            }
            x -= w;
        }
        let rows = rng.gen_range(cfg.min_rows..=cfg.max_rows);
        let mut g = Gen { kb, types: &mut types, rels: &mut rels };
        let t = chosen(&mut g, &mut rng, rows, id);
        debug_assert!(t.validate().is_ok(), "{:?}", t.validate());
        tables.push(t);
    }
    let ds = Dataset { tables, type_vocab: types, rel_vocab: rels };
    ds.validate().expect("generated dataset must validate");
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::{KbConfig, KnowledgeBase};

    fn dataset() -> Dataset {
        let kb = KnowledgeBase::generate(&KbConfig::default(), 42);
        generate_wikitable(&kb, &WikiTableConfig { n_tables: 300, ..Default::default() })
    }

    #[test]
    fn dataset_validates_and_has_expected_shape() {
        let ds = dataset();
        assert_eq!(ds.tables.len(), 300);
        assert!(ds.type_vocab.len() >= 30, "types: {}", ds.type_vocab.len());
        assert!(ds.rel_vocab.len() >= 25, "rels: {}", ds.rel_vocab.len());
        assert!(ds.n_relations() > 400);
        ds.validate().unwrap();
    }

    #[test]
    fn multi_label_columns_exist() {
        let ds = dataset();
        let multi =
            ds.tables.iter().flat_map(|t| t.col_types.iter()).filter(|ts| ts.len() >= 2).count();
        assert!(multi > 100, "expected many multi-label columns, got {multi}");
    }

    #[test]
    fn relations_emanate_from_subject_column() {
        let ds = dataset();
        for t in &ds.tables {
            for r in &t.relations {
                assert_eq!(r.subject_col, 0, "TURL-style: relations from column 0");
                assert!(r.object_col > 0);
            }
        }
    }

    #[test]
    fn table_10_classes_are_present() {
        let ds = dataset();
        for ty in [
            "music.artist",
            "music.genre",
            "music.writer",
            "american_football.football_coach",
            "american_football.football_conference",
            "american_football.football_team",
        ] {
            assert!(ds.type_vocab.id(ty).is_some(), "missing type {ty}");
        }
        for rel in [
            "film.film.production_companies",
            "film.film.produced_by",
            "film.film.story_by",
            "people.person.place_of_birth",
            "people.person.place_lived",
            "people.person.nationality",
        ] {
            assert!(ds.rel_vocab.id(rel).is_some(), "missing relation {rel}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = dataset();
        let b = dataset();
        for (x, y) in a.tables.iter().zip(b.tables.iter()) {
            assert_eq!(x.table.id, y.table.id);
            assert_eq!(x.col_types, y.col_types);
        }
    }

    #[test]
    fn person_columns_always_carry_base_person_type() {
        let ds = dataset();
        let person = ds.type_vocab.id("people.person").unwrap();
        for t in &ds.tables {
            for (ci, types) in t.col_types.iter().enumerate() {
                for name in ["film.director", "film.producer", "music.artist", "royalty.monarch"] {
                    if let Some(id) = ds.type_vocab.id(name) {
                        if types.contains(&id) {
                            assert!(
                                types.contains(&person),
                                "table {} col {ci}: {name} without people.person",
                                t.table.id
                            );
                        }
                    }
                }
            }
        }
    }
}
