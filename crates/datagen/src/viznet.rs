//! VizNet-style benchmark generator.
//!
//! Mirrors the Sato/VizNet benchmark of §5.1: single-label columns over the
//! *same 78 semantic types* the paper's Figure 5 enumerates, including the
//! numeric-heavy types stress-tested in Table 5 (`plays`, `rank`, `isbn`,
//! `capacity`, ...) whose numeric fractions are engineered to resemble the
//! paper's `%num` column. Tables are drawn from co-occurrence themes so that
//! table context genuinely disambiguates confusable types (`rank` vs
//! `ranking`, `city` vs `birthPlace`, `name` vs `jockey` vs `director`),
//! which is exactly the signal multi-column models exploit.

use crate::kb::KnowledgeBase;
use crate::names::{LAST_NAMES, STATUS_WORDS};
use doduo_table::{AnnotatedTable, Column, Dataset, LabelVocab, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The 78 VizNet semantic types, exactly as listed in the paper's Figure 5.
pub const VIZNET_TYPES: [&str; 78] = [
    "isbn",
    "year",
    "age",
    "state",
    "grades",
    "weight",
    "status",
    "industry",
    "club",
    "gender",
    "result",
    "religion",
    "language",
    "birthDate",
    "family",
    "team",
    "code",
    "city",
    "category",
    "description",
    "duration",
    "type",
    "rank",
    "sex",
    "name",
    "address",
    "affiliation",
    "symbol",
    "teamName",
    "format",
    "service",
    "education",
    "location",
    "elevation",
    "county",
    "position",
    "company",
    "collection",
    "album",
    "day",
    "country",
    "class",
    "publisher",
    "currency",
    "origin",
    "plays",
    "depth",
    "jockey",
    "fileSize",
    "order",
    "organisation",
    "artist",
    "birthPlace",
    "continent",
    "genre",
    "nationality",
    "credit",
    "classification",
    "owner",
    "notes",
    "area",
    "creator",
    "region",
    "sales",
    "operator",
    "product",
    "component",
    "requirement",
    "species",
    "manufacturer",
    "capacity",
    "range",
    "brand",
    "affiliate",
    "command",
    "director",
    "ranking",
    "person",
];

/// The paper's Table 5: the 15 most numeric VizNet types.
pub const NUMERIC_STRESS_TYPES: [&str; 15] = [
    "plays",
    "rank",
    "depth",
    "sales",
    "year",
    "fileSize",
    "elevation",
    "ranking",
    "age",
    "birthDate",
    "grades",
    "weight",
    "isbn",
    "capacity",
    "code",
];

/// Co-occurrence themes: types that appear together in real tables. A table
/// samples 2-5 types from one theme (or is single-column).
const THEMES: &[&[&str]] = &[
    // People / demographics.
    &[
        "name",
        "age",
        "gender",
        "birthDate",
        "birthPlace",
        "nationality",
        "family",
        "education",
        "religion",
    ],
    &["person", "sex", "age", "address", "city", "state"],
    // Sports.
    &["team", "teamName", "club", "position", "result", "rank", "order"],
    &["jockey", "result", "ranking", "order", "club"],
    // Geography.
    &["city", "state", "county", "country", "continent", "region", "location", "elevation", "area"],
    &["address", "city", "state", "code", "county"],
    // Music / media.
    &["album", "artist", "genre", "duration", "format", "plays", "collection", "creator"],
    &["director", "year", "genre", "person", "credit"],
    // Business.
    &[
        "company",
        "industry",
        "product",
        "brand",
        "manufacturer",
        "owner",
        "sales",
        "symbol",
        "currency",
    ],
    &["organisation", "affiliation", "affiliate", "operator", "service", "status"],
    // Publications.
    &["isbn", "publisher", "language", "year", "notes", "description", "category"],
    // Catalog / tech.
    &["code", "type", "class", "classification", "component", "requirement", "command", "status"],
    &["fileSize", "format", "capacity", "range", "depth", "weight"],
    // Nature.
    &["species", "classification", "region", "origin", "grades"],
    // Schedules.
    &["day", "duration", "order", "result", "service"],
];

/// Generation knobs.
#[derive(Clone, Debug)]
pub struct VizNetConfig {
    pub n_tables: usize,
    pub min_rows: usize,
    pub max_rows: usize,
    /// Fraction of single-column tables (the "Full" dataset of Table 4
    /// contains them; "Multi-column only" filters them out).
    pub single_col_frac: f64,
    pub seed: u64,
}

impl Default for VizNetConfig {
    fn default() -> Self {
        VizNetConfig { n_tables: 800, min_rows: 3, max_rows: 6, single_col_frac: 0.3, seed: 42 }
    }
}

fn pick<'a, R: Rng + ?Sized>(rng: &mut R, xs: &[&'a str]) -> &'a str {
    xs[rng.gen_range(0..xs.len())]
}

/// Generates one cell value for a semantic type. Distributions are designed
/// so `doduo_table::is_numeric_like` reports numeric fractions close to the
/// paper's Table 5 `%num` column.
pub fn gen_value(ty: &str, kb: &KnowledgeBase, rng: &mut StdRng) -> String {
    let person = |rng: &mut StdRng| kb.people[rng.gen_range(0..kb.people.len())].name.clone();
    let city = |rng: &mut StdRng| kb.cities[rng.gen_range(0..kb.cities.len())].name.clone();
    let country =
        |rng: &mut StdRng| kb.countries[rng.gen_range(0..kb.countries.len())].name.clone();
    let company =
        |rng: &mut StdRng| kb.companies[rng.gen_range(0..kb.companies.len())].name.clone();
    let adjective = |rng: &mut StdRng| pick(rng, crate::names::FILM_ADJECTIVES);
    let noun = |rng: &mut StdRng| pick(rng, crate::names::FILM_NOUNS);

    match ty {
        "isbn" => {
            // ~44% numeric-like: mix dashed-digit ISBNs with `isbn`-prefixed.
            if rng.gen::<f32>() < 0.44 {
                format!(
                    "978-{}-{:05}-{:03}-{}",
                    rng.gen_range(0..10),
                    rng.gen_range(0..100_000),
                    rng.gen_range(0..1000),
                    rng.gen_range(0..10)
                )
            } else {
                format!("isbn {:010}", rng.gen_range(0u64..10_000_000_000))
            }
        }
        "year" => {
            if rng.gen::<f32>() < 0.92 {
                rng.gen_range(1900..2023).to_string()
            } else {
                format!("c. {}", rng.gen_range(1800..1900))
            }
        }
        "age" => {
            if rng.gen::<f32>() < 0.81 {
                rng.gen_range(1..100).to_string()
            } else {
                format!("{} years", rng.gen_range(1..100))
            }
        }
        "state" => format!("{}shire", pick(rng, crate::names::CITY_PREFIXES)),
        "grades" => {
            if rng.gen::<f32>() < 0.67 {
                format!("{}-{}", rng.gen_range(1..7), rng.gen_range(7..13))
            } else {
                format!("k-{}", rng.gen_range(5..9))
            }
        }
        "weight" => {
            if rng.gen::<f32>() < 0.60 {
                rng.gen_range(40..260).to_string()
            } else {
                format!("{} kg", rng.gen_range(40..260))
            }
        }
        "status" => pick(rng, STATUS_WORDS).to_string(),
        "industry" => pick(
            rng,
            &[
                "software",
                "retail",
                "banking",
                "insurance",
                "logistics",
                "media",
                "telecom",
                "mining",
                "farming",
                "tourism",
            ],
        )
        .to_string(),
        "club" => format!("{} fc", city(rng)),
        "gender" => pick(rng, &["male", "female"]).to_string(),
        "result" => {
            if rng.gen::<f32>() < 0.5 {
                format!("{}-{}", rng.gen_range(0..6), rng.gen_range(0..6))
            } else {
                pick(rng, &["won", "lost", "draw", "retired", "disqualified"]).to_string()
            }
        }
        "religion" => pick(rng, &kb.religions).to_string(),
        "language" => kb.countries[rng.gen_range(0..kb.countries.len())].language.clone(),
        "birthDate" => {
            if rng.gen::<f32>() < 0.68 {
                format!(
                    "{}-{:02}-{:02}",
                    rng.gen_range(1930..2010),
                    rng.gen_range(1..13),
                    rng.gen_range(1..29)
                )
            } else {
                format!(
                    "{} {}, {}",
                    pick(rng, &["january", "march", "june", "august", "october", "december"]),
                    rng.gen_range(1..29),
                    rng.gen_range(1930..2010)
                )
            }
        }
        "family" => pick(rng, LAST_NAMES).to_string(),
        "team" => kb.teams[rng.gen_range(0..kb.teams.len())].name.clone(),
        "code" => {
            // ~36% pure digits.
            if rng.gen::<f32>() < 0.36 {
                format!("{:03}", rng.gen_range(0..1000))
            } else {
                format!(
                    "{}{}-{}",
                    pick(rng, &["a", "b", "x", "k", "q", "z"]),
                    pick(rng, &["a", "k", "r", "t"]),
                    rng.gen_range(1..999)
                )
            }
        }
        "city" => city(rng),
        "category" => pick(
            rng,
            &[
                "tools",
                "sports",
                "garden",
                "kitchen",
                "electronics",
                "books",
                "toys",
                "outdoor",
                "office",
                "beauty",
            ],
        )
        .to_string(),
        "description" => format!("a {} {} for {}", adjective(rng), noun(rng), noun(rng)),
        "duration" => format!("{}:{:02}", rng.gen_range(0..12), rng.gen_range(0..60)),
        "type" => {
            pick(rng, &["standard", "premium", "basic", "deluxe", "custom", "economy"]).to_string()
        }
        "rank" => {
            if rng.gen::<f32>() < 0.93 {
                rng.gen_range(1..101).to_string()
            } else {
                format!("{}th", rng.gen_range(4..20))
            }
        }
        "sex" => pick(rng, &["m", "f", "male", "female"]).to_string(),
        "name" => person(rng),
        "address" => format!("{} {} street", rng.gen_range(1..999), noun(rng)),
        "affiliation" => kb.universities[rng.gen_range(0..kb.universities.len())].name.clone(),
        "symbol" => {
            let n = rng.gen_range(2..5);
            (0..n).map(|_| (b'a' + rng.gen_range(0..26u8)) as char).collect()
        }
        "teamName" => pick(rng, crate::names::TEAM_MASCOTS).to_string(),
        "format" => {
            pick(rng, &["cd", "vinyl", "digital", "cassette", "dvd", "blu-ray"]).to_string()
        }
        "service" => {
            pick(rng, &["delivery", "streaming", "consulting", "hosting", "support", "cleaning"])
                .to_string()
        }
        "education" => {
            pick(rng, &["high school", "bachelor of arts", "master of science", "phd", "diploma"])
                .to_string()
        }
        "location" => {
            if rng.gen::<f32>() < 0.5 {
                city(rng)
            } else {
                format!("{} {}", city(rng), pick(rng, &["arena", "park", "hall", "stadium"]))
            }
        }
        "elevation" => {
            if rng.gen::<f32>() < 0.87 {
                rng.gen_range(-10..4000).to_string()
            } else {
                format!("{} m", rng.gen_range(0..4000))
            }
        }
        "county" => format!("{} county", city(rng)),
        "position" => {
            if rng.gen::<bool>() {
                pick(rng, crate::names::FOOTBALL_POSITIONS).to_string()
            } else {
                pick(rng, crate::names::BASEBALL_POSITIONS).to_string()
            }
        }
        "company" => company(rng),
        "collection" => format!(
            "{} collection {}",
            pick(rng, &["summer", "winter", "spring", "autumn", "classic", "modern"]),
            rng.gen_range(2000..2023)
        ),
        "album" => format!("{} {}", adjective(rng), noun(rng)),
        "day" => {
            if rng.gen::<f32>() < 0.7 {
                pick(
                    rng,
                    &["monday", "tuesday", "wednesday", "thursday", "friday", "saturday", "sunday"],
                )
                .to_string()
            } else {
                rng.gen_range(1..29).to_string()
            }
        }
        "country" => country(rng),
        "class" => {
            pick(rng, &["a", "b", "c", "first", "second", "economy", "business"]).to_string()
        }
        "publisher" => format!("{} press", pick(rng, LAST_NAMES)),
        "currency" => {
            pick(rng, &["dollar", "euro", "peso", "krona", "franc", "yen", "rand"]).to_string()
        }
        "origin" => country(rng),
        "plays" => rng.gen_range(0..2_000_000).to_string(),
        "depth" => {
            if rng.gen::<f32>() < 0.93 {
                rng.gen_range(1..11_000).to_string()
            } else {
                format!("{} m", rng.gen_range(1..11_000))
            }
        }
        "jockey" => person(rng),
        "fileSize" => {
            if rng.gen::<f32>() < 0.88 {
                format!("{:.1}", rng.gen::<f32>() * 4096.0)
            } else {
                format!("{:.1} mb", rng.gen::<f32>() * 4096.0)
            }
        }
        "order" => {
            if rng.gen::<f32>() < 0.75 {
                rng.gen_range(1..30).to_string()
            } else {
                pick(rng, &["first", "second", "third", "fourth", "last"]).to_string()
            }
        }
        "organisation" => format!(
            "{} {}",
            noun(rng),
            pick(rng, &["foundation", "institute", "council", "society", "association"])
        ),
        "artist" => person(rng),
        "birthPlace" => city(rng),
        "continent" => {
            pick(rng, &["asteria", "borealia", "meridia", "occidia", "orientia", "australis"])
                .to_string()
        }
        "genre" => pick(rng, &kb.genres).to_string(),
        "nationality" => kb.countries[rng.gen_range(0..kb.countries.len())].language.clone(),
        "credit" => format!("photo by {}", person(rng)),
        "classification" => {
            pick(rng, &["endangered", "stable", "vulnerable", "extinct", "secure", "threatened"])
                .to_string()
        }
        "owner" => {
            if rng.gen::<bool>() {
                person(rng)
            } else {
                company(rng)
            }
        }
        "notes" => pick(
            rng,
            &[
                "see appendix",
                "revised 2019",
                "approximate",
                "unconfirmed",
                "from archive",
                "estimated",
            ],
        )
        .to_string(),
        "area" => {
            if rng.gen::<f32>() < 0.8 {
                rng.gen_range(10..100_000).to_string()
            } else {
                format!("{} km2", rng.gen_range(10..100_000))
            }
        }
        "creator" => person(rng),
        "region" => format!("{} region", pick(rng, crate::names::CITY_PREFIXES)),
        "sales" => {
            if rng.gen::<f32>() < 0.92 {
                rng.gen_range(1000..9_000_000).to_string()
            } else {
                format!("{}m units", rng.gen_range(1..40))
            }
        }
        "operator" => company(rng),
        "product" => format!(
            "{} {}",
            adjective(rng),
            pick(
                rng,
                &["lamp", "chair", "desk", "kettle", "router", "speaker", "monitor", "blender"]
            )
        ),
        "component" => pick(
            rng,
            &["engine", "rotor", "valve", "sensor", "bearing", "gasket", "piston", "filter"],
        )
        .to_string(),
        "requirement" => format!(
            "min {} {}",
            rng.gen_range(1..64),
            pick(rng, &["gb ram", "cores", "volts", "users"])
        ),
        "species" => pick(rng, &kb.organisms).to_string(),
        "manufacturer" => company(rng),
        "capacity" => {
            // ~42% plain numeric.
            if rng.gen::<f32>() < 0.42 {
                rng.gen_range(100..90_000).to_string()
            } else {
                format!("{} seats", rng.gen_range(100..90_000))
            }
        }
        "range" => {
            if rng.gen::<f32>() < 0.5 {
                format!("{}-{} km", rng.gen_range(1..50), rng.gen_range(50..400))
            } else {
                pick(rng, &["short", "medium", "long", "extended"]).to_string()
            }
        }
        "brand" => pick(rng, LAST_NAMES).to_string(),
        "affiliate" => format!("{} network", pick(rng, LAST_NAMES)),
        "command" => pick(
            rng,
            &["run", "stop", "delete", "install", "update", "restart", "status", "deploy"],
        )
        .to_string(),
        "director" => person(rng),
        "ranking" => {
            // Same surface form as `rank` — the confusion the paper reports
            // (ranking F1 = 33.21 in Table 5).
            if rng.gen::<f32>() < 0.87 {
                rng.gen_range(1..101).to_string()
            } else {
                format!("#{}", rng.gen_range(1..101))
            }
        }
        "person" => person(rng),
        _ => panic!("unknown VizNet type: {ty}"),
    }
}

/// Generates the VizNet-style benchmark (single-label, no relations).
pub fn generate_viznet(kb: &KnowledgeBase, cfg: &VizNetConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut types = LabelVocab::new();
    // Intern all 78 up-front so ids are stable regardless of sampling.
    for ty in VIZNET_TYPES {
        types.intern(ty);
    }
    let themes: Vec<Vec<&str>> = THEMES
        .iter()
        .map(|t| t.iter().copied().filter(|ty| VIZNET_TYPES.contains(ty)).collect())
        .collect();

    let mut tables = Vec::with_capacity(cfg.n_tables);
    for id in 0..cfg.n_tables {
        let rows = rng.gen_range(cfg.min_rows..=cfg.max_rows);
        let single = rng.gen_bool(cfg.single_col_frac);
        let chosen: Vec<&str> = if single {
            vec![VIZNET_TYPES[rng.gen_range(0..VIZNET_TYPES.len())]]
        } else {
            let theme = &themes[rng.gen_range(0..themes.len())];
            let k = rng.gen_range(2..=4.min(theme.len()));
            let mut picked: Vec<&str> = Vec::with_capacity(k);
            while picked.len() < k {
                let t = theme[rng.gen_range(0..theme.len())];
                if !picked.contains(&t) {
                    picked.push(t);
                }
            }
            picked
        };
        let mut columns = Vec::with_capacity(chosen.len());
        let mut col_types = Vec::with_capacity(chosen.len());
        for ty in &chosen {
            let values: Vec<String> = (0..rows).map(|_| gen_value(ty, kb, &mut rng)).collect();
            columns.push(Column::with_name(ty.to_string(), values));
            col_types.push(vec![types.id(ty).expect("interned")]);
        }
        tables.push(AnnotatedTable {
            table: Table::new(format!("viz-{id}"), columns),
            col_types,
            relations: Vec::new(),
        });
    }
    let ds = Dataset { tables, type_vocab: types, rel_vocab: LabelVocab::new() };
    ds.validate().expect("generated dataset must validate");
    ds
}

/// The "Multi-column only" variant of Table 4: drops single-column tables.
pub fn multi_column_only(ds: &Dataset) -> Dataset {
    Dataset {
        tables: ds.tables.iter().filter(|t| t.table.n_cols() > 1).cloned().collect(),
        type_vocab: ds.type_vocab.clone(),
        rel_vocab: ds.rel_vocab.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::{KbConfig, KnowledgeBase};
    use doduo_table::is_numeric_like;

    fn kb() -> KnowledgeBase {
        KnowledgeBase::generate(&KbConfig::default(), 42)
    }

    #[test]
    fn exactly_78_types() {
        assert_eq!(VIZNET_TYPES.len(), 78);
        let mut sorted = VIZNET_TYPES.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 78, "type names must be unique");
    }

    #[test]
    fn every_type_generates_nonempty_values() {
        let kb = kb();
        let mut rng = StdRng::seed_from_u64(1);
        for ty in VIZNET_TYPES {
            for _ in 0..5 {
                let v = gen_value(ty, &kb, &mut rng);
                assert!(!v.trim().is_empty(), "{ty} generated an empty value");
            }
        }
    }

    #[test]
    fn numeric_fractions_roughly_match_table_5() {
        // Paper Table 5 %num values we engineered towards (±15 points).
        let expect: &[(&str, f32)] = &[
            ("plays", 1.00),
            ("rank", 0.93),
            ("year", 0.91),
            ("age", 0.81),
            ("isbn", 0.44),
            ("capacity", 0.42),
            ("code", 0.36),
        ];
        let kb = kb();
        let mut rng = StdRng::seed_from_u64(2);
        for &(ty, frac) in expect {
            let hits = (0..600).filter(|_| is_numeric_like(&gen_value(ty, &kb, &mut rng))).count();
            let measured = hits as f32 / 600.0;
            assert!(
                (measured - frac).abs() < 0.15,
                "{ty}: measured %num {measured:.2} vs paper-like {frac:.2}"
            );
        }
    }

    #[test]
    fn dataset_shape_and_single_label() {
        let ds = generate_viznet(&kb(), &VizNetConfig { n_tables: 200, ..Default::default() });
        assert_eq!(ds.tables.len(), 200);
        assert_eq!(ds.type_vocab.len(), 78);
        for t in &ds.tables {
            for types in &t.col_types {
                assert_eq!(types.len(), 1, "VizNet columns are single-label");
            }
            assert!(t.relations.is_empty());
        }
    }

    #[test]
    fn single_and_multi_column_mix() {
        let ds = generate_viznet(&kb(), &VizNetConfig { n_tables: 400, ..Default::default() });
        let single = ds.tables.iter().filter(|t| t.table.n_cols() == 1).count();
        assert!(single > 60 && single < 200, "single-column count {single}");
        let multi = multi_column_only(&ds);
        assert!(multi.tables.iter().all(|t| t.table.n_cols() > 1));
        assert_eq!(multi.tables.len(), 400 - single);
    }

    #[test]
    fn columns_carry_their_own_type_name_as_header() {
        let ds = generate_viznet(&kb(), &VizNetConfig { n_tables: 50, ..Default::default() });
        for t in &ds.tables {
            for (col, types) in t.table.columns.iter().zip(&t.col_types) {
                let name = col.name.as_deref().unwrap();
                assert_eq!(ds.type_vocab.name(types[0]), name);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_viznet(&kb(), &VizNetConfig { n_tables: 60, ..Default::default() });
        let b = generate_viznet(&kb(), &VizNetConfig { n_tables: 60, ..Default::default() });
        for (x, y) in a.tables.iter().zip(b.tables.iter()) {
            assert_eq!(x.table, y.table);
        }
    }

    /// Format contracts for a representative sample of the 78 generators.
    #[test]
    fn per_type_value_formats() {
        let kb = kb();
        let mut rng = StdRng::seed_from_u64(11);
        let mut check = |ty: &str, pred: &dyn Fn(&str) -> bool| {
            for _ in 0..30 {
                let v = gen_value(ty, &kb, &mut rng);
                assert!(pred(&v), "{ty} generated unexpected value {v:?}");
            }
        };
        check("year", &|v| {
            v.parse::<u32>().map(|y| (1900..2023).contains(&y)).unwrap_or(v.starts_with("c. "))
        });
        check("age", &|v| {
            let d: String = v.chars().take_while(|c| c.is_ascii_digit()).collect();
            d.parse::<u32>().map(|a| (1..100).contains(&a)).unwrap_or(false)
        });
        check("duration", &|v| v.contains(':') && v.len() >= 4);
        check("gender", &|v| v == "male" || v == "female");
        check("sex", &|v| ["m", "f", "male", "female"].contains(&v));
        check("plays", &|v| v.parse::<u64>().is_ok());
        check("symbol", &|v| {
            v.len() >= 2 && v.len() <= 4 && v.chars().all(|c| c.is_ascii_lowercase())
        });
        check("county", &|v| v.ends_with(" county"));
        check("region", &|v| v.ends_with(" region"));
        check("club", &|v| v.ends_with(" fc"));
        check("publisher", &|v| v.ends_with(" press"));
        check("credit", &|v| v.starts_with("photo by "));
        check("address", &|v| v.ends_with(" street"));
        check("requirement", &|v| v.starts_with("min "));
        check("continent", &|v| {
            ["asteria", "borealia", "meridia", "occidia", "orientia", "australis"].contains(&v)
        });
        check("rank", &|v| v.parse::<u32>().is_ok() || v.ends_with("th"));
        check("day", &|v| {
            v.parse::<u32>().is_ok()
                || ["monday", "tuesday", "wednesday", "thursday", "friday", "saturday", "sunday"]
                    .contains(&v)
        });
        check("birthDate", &|v| v.chars().filter(|c| c.is_ascii_digit()).count() >= 5);
        check("isbn", &|v| v.starts_with("978-") || v.starts_with("isbn "));
        check("grades", &|v| v.contains('-'));
    }

    #[test]
    fn confusable_types_share_surface_forms() {
        // The paper's Table 5 failure case: `ranking` is confusable with
        // `rank` — both must emit plain integers most of the time, so only
        // table context can separate them.
        let kb = kb();
        let mut rng = StdRng::seed_from_u64(12);
        let plain_int = |ty: &str, rng: &mut StdRng| {
            (0..200).filter(|_| gen_value(ty, &kb, rng).parse::<u32>().is_ok()).count()
        };
        let rank = plain_int("rank", &mut rng);
        let ranking = plain_int("ranking", &mut rng);
        assert!(rank > 150 && ranking > 140, "rank {rank}, ranking {ranking}");
        // jockey / director / person / artist all emit person names.
        let jockey = gen_value("jockey", &kb, &mut rng);
        assert!(jockey.split_whitespace().count() == 2, "person-like name: {jockey}");
    }
}
