//! The synthetic knowledge base.
//!
//! Stands in for Freebase + Wikipedia in the paper's pipeline (DESIGN.md
//! §1): a closed world of entities and facts from which *both* the LM
//! pretraining corpus (so the language model genuinely stores this
//! knowledge) and the table benchmarks (so annotations are grounded in the
//! same facts) are generated. All generation is seeded and deterministic.

use crate::names::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Index types into the KB's entity vectors.
pub type PersonId = usize;
pub type CityId = usize;
pub type CountryId = usize;
pub type FilmId = usize;
pub type TeamId = usize;
pub type CompanyId = usize;

/// What a person does; people may hold several professions, and *full-name
/// collisions across professions are allowed* (the George Miller ambiguity
/// of §1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Profession {
    Director,
    Producer,
    ScreenWriter,
    Author,
    FootballPlayer,
    FootballCoach,
    BaseballPlayer,
    MusicArtist,
    MusicWriter,
    Monarch,
    Jockey,
}

pub const ALL_PROFESSIONS: [Profession; 11] = [
    Profession::Director,
    Profession::Producer,
    Profession::ScreenWriter,
    Profession::Author,
    Profession::FootballPlayer,
    Profession::FootballCoach,
    Profession::BaseballPlayer,
    Profession::MusicArtist,
    Profession::MusicWriter,
    Profession::Monarch,
    Profession::Jockey,
];

impl Profession {
    /// Professions that cannot be held together (a person plays one sport,
    /// so team/position assignments stay unambiguous).
    pub fn conflicts_with(self, other: Profession) -> bool {
        matches!(
            (self, other),
            (Profession::FootballPlayer, Profession::BaseballPlayer)
                | (Profession::BaseballPlayer, Profession::FootballPlayer)
        )
    }

    /// The English word used in corpus sentences and probing templates.
    pub fn word(self) -> &'static str {
        match self {
            Profession::Director => "director",
            Profession::Producer => "producer",
            Profession::ScreenWriter => "screenwriter",
            Profession::Author => "author",
            Profession::FootballPlayer => "athlete",
            Profession::FootballCoach => "coach",
            Profession::BaseballPlayer => "player",
            Profession::MusicArtist => "artist",
            Profession::MusicWriter => "songwriter",
            Profession::Monarch => "monarch",
            Profession::Jockey => "jockey",
        }
    }
}

#[derive(Clone, Debug)]
pub struct Person {
    pub name: String,
    pub professions: Vec<Profession>,
    pub birth_city: CityId,
    pub lived_city: CityId,
    pub nationality: CountryId,
    /// Team membership for athletes.
    pub team: Option<TeamId>,
    /// Field position for football/baseball players.
    pub position: Option<String>,
    pub age: u32,
    pub gender: &'static str,
}

#[derive(Clone, Debug)]
pub struct City {
    pub name: String,
    pub country: CountryId,
    pub population: u64,
    pub elevation: i32,
    /// Name of the city's airport, if it has one.
    pub airport: Option<String>,
}

#[derive(Clone, Debug)]
pub struct Country {
    pub name: String,
    pub language: String,
}

#[derive(Clone, Debug)]
pub struct Film {
    pub title: String,
    pub directors: Vec<PersonId>,
    pub producers: Vec<PersonId>,
    pub story_by: PersonId,
    pub production_company: CompanyId,
    pub country: CountryId,
    pub year: u32,
    pub genre: &'static str,
}

#[derive(Clone, Debug)]
pub struct Team {
    pub name: String,
    pub city: CityId,
    pub conference: &'static str,
    pub coach: PersonId,
    /// `true` for football teams, `false` for baseball.
    pub football: bool,
}

#[derive(Clone, Debug)]
pub struct Company {
    pub name: String,
    pub country: CountryId,
}

#[derive(Clone, Debug)]
pub struct Book {
    pub title: String,
    pub author: PersonId,
    pub year: u32,
}

#[derive(Clone, Debug)]
pub struct University {
    pub name: String,
    pub city: CityId,
}

#[derive(Clone, Debug)]
pub struct River {
    pub name: String,
    pub country: CountryId,
    pub length_km: u32,
}

#[derive(Clone, Debug)]
pub struct Election {
    pub name: String,
    pub country: CountryId,
    pub year: u32,
}

#[derive(Clone, Debug)]
pub struct Award {
    pub name: String,
    pub winner: PersonId,
    pub nominees: Vec<PersonId>,
}

#[derive(Clone, Debug)]
pub struct TvProgram {
    pub name: String,
    pub country: CountryId,
    pub company: CompanyId,
}

#[derive(Clone, Debug)]
pub struct Kingdom {
    pub name: String,
    pub monarch: PersonId,
}

#[derive(Clone, Debug)]
pub struct Invention {
    pub name: String,
    pub inventor: PersonId,
    pub year: u32,
}

/// Knowledge-base sizing knobs.
#[derive(Clone, Debug)]
pub struct KbConfig {
    pub n_people: usize,
    pub n_cities: usize,
    pub n_films: usize,
    pub n_teams: usize,
    pub n_companies: usize,
    pub n_books: usize,
    pub n_universities: usize,
    pub n_rivers: usize,
    pub n_elections: usize,
    pub n_awards: usize,
    pub n_tv_programs: usize,
    pub n_inventions: usize,
}

impl Default for KbConfig {
    fn default() -> Self {
        KbConfig {
            n_people: 260,
            n_cities: 60,
            n_films: 110,
            n_teams: 32,
            n_companies: 36,
            n_books: 60,
            n_universities: 28,
            n_rivers: 24,
            n_elections: 20,
            n_awards: 14,
            n_tv_programs: 26,
            n_inventions: 10,
        }
    }
}

/// The closed world of entities and facts.
#[derive(Clone, Debug)]
pub struct KnowledgeBase {
    pub countries: Vec<Country>,
    pub cities: Vec<City>,
    pub people: Vec<Person>,
    pub films: Vec<Film>,
    pub teams: Vec<Team>,
    pub companies: Vec<Company>,
    pub books: Vec<Book>,
    pub universities: Vec<University>,
    pub rivers: Vec<River>,
    pub elections: Vec<Election>,
    pub awards: Vec<Award>,
    pub tv_programs: Vec<TvProgram>,
    pub kingdoms: Vec<Kingdom>,
    pub inventions: Vec<Invention>,
    pub religions: Vec<&'static str>,
    pub constellations: Vec<&'static str>,
    pub organisms: Vec<&'static str>,
    pub genres: Vec<&'static str>,
}

impl KnowledgeBase {
    /// Builds a deterministic KB from a seed.
    pub fn generate(cfg: &KbConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);

        let countries: Vec<Country> = COUNTRIES
            .iter()
            .map(|&(n, l)| Country { name: n.to_string(), language: l.to_string() })
            .collect();

        // Cities: unique prefix+suffix names, round-robin countries.
        let mut cities = Vec::with_capacity(cfg.n_cities);
        let mut used = HashSet::new();
        while cities.len() < cfg.n_cities {
            let name = format!(
                "{}{}",
                CITY_PREFIXES[rng.gen_range(0..CITY_PREFIXES.len())],
                CITY_SUFFIXES[rng.gen_range(0..CITY_SUFFIXES.len())]
            );
            if !used.insert(name.clone()) {
                continue;
            }
            let idx = cities.len();
            cities.push(City {
                name: name.clone(),
                country: idx % countries.len(),
                population: rng.gen_range(20_000..5_000_000),
                elevation: rng.gen_range(-10..2_400),
                airport: if idx % 3 == 0 {
                    Some(format!("{name} international airport"))
                } else {
                    None
                },
            });
        }

        // People: sampled first+last; collisions across professions allowed.
        let mut people = Vec::with_capacity(cfg.n_people);
        for _ in 0..cfg.n_people {
            let name = format!(
                "{} {}",
                FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
                LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())]
            );
            let n_prof = if rng.gen::<f32>() < 0.2 { 2 } else { 1 };
            let mut professions = Vec::with_capacity(n_prof);
            while professions.len() < n_prof {
                let p = ALL_PROFESSIONS[rng.gen_range(0..ALL_PROFESSIONS.len())];
                if !professions.contains(&p) && !professions.iter().any(|q| q.conflicts_with(p)) {
                    professions.push(p);
                }
            }
            let birth_city = rng.gen_range(0..cities.len());
            let lived_city =
                if rng.gen::<f32>() < 0.5 { birth_city } else { rng.gen_range(0..cities.len()) };
            people.push(Person {
                name,
                professions,
                birth_city,
                lived_city,
                nationality: cities[birth_city].country,
                team: None,
                position: None,
                age: rng.gen_range(18..80),
                gender: if rng.gen::<bool>() { "female" } else { "male" },
            });
        }

        let by_prof = |people: &[Person], p: Profession| -> Vec<PersonId> {
            people
                .iter()
                .enumerate()
                .filter(|(_, x)| x.professions.contains(&p))
                .map(|(i, _)| i)
                .collect()
        };
        // Ensure each profession has at least a handful of members.
        for prof in ALL_PROFESSIONS {
            while by_prof(&people, prof).len() < 6 {
                let i = rng.gen_range(0..people.len());
                if !people[i].professions.contains(&prof)
                    && !people[i].professions.iter().any(|q| q.conflicts_with(prof))
                {
                    people[i].professions.push(prof);
                }
            }
        }

        // Companies.
        let companies: Vec<Company> = (0..cfg.n_companies)
            .map(|_| Company {
                name: format!(
                    "{} {}",
                    LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())],
                    COMPANY_SUFFIXES[rng.gen_range(0..COMPANY_SUFFIXES.len())]
                ),
                country: rng.gen_range(0..countries.len()),
            })
            .collect();

        // Films.
        let directors = by_prof(&people, Profession::Director);
        let producers = by_prof(&people, Profession::Producer);
        let writers = by_prof(&people, Profession::ScreenWriter);
        let mut films = Vec::with_capacity(cfg.n_films);
        let mut used_titles = HashSet::new();
        while films.len() < cfg.n_films {
            let title = format!(
                "{} {}",
                FILM_ADJECTIVES[rng.gen_range(0..FILM_ADJECTIVES.len())],
                FILM_NOUNS[rng.gen_range(0..FILM_NOUNS.len())]
            );
            if !used_titles.insert(title.clone()) {
                continue;
            }
            let n_dir = if rng.gen::<f32>() < 0.25 { 2 } else { 1 };
            let n_prod = if rng.gen::<f32>() < 0.3 { 2 } else { 1 };
            films.push(Film {
                title,
                directors: (0..n_dir)
                    .map(|_| directors[rng.gen_range(0..directors.len())])
                    .collect(),
                producers: (0..n_prod)
                    .map(|_| producers[rng.gen_range(0..producers.len())])
                    .collect(),
                story_by: writers[rng.gen_range(0..writers.len())],
                production_company: rng.gen_range(0..companies.len()),
                country: rng.gen_range(0..countries.len()),
                year: rng.gen_range(1960..2022),
                genre: GENRES[rng.gen_range(0..GENRES.len())],
            });
        }

        // Teams (football + baseball) with coaches and rosters.
        let coaches = by_prof(&people, Profession::FootballCoach);
        let mut teams = Vec::with_capacity(cfg.n_teams);
        let mut used_team_names = HashSet::new();
        while teams.len() < cfg.n_teams {
            let city = rng.gen_range(0..cities.len());
            let name = format!(
                "{} {}",
                cities[city].name,
                TEAM_MASCOTS[rng.gen_range(0..TEAM_MASCOTS.len())]
            );
            if !used_team_names.insert(name.clone()) {
                continue;
            }
            teams.push(Team {
                name,
                city,
                conference: FOOTBALL_CONFERENCES[rng.gen_range(0..FOOTBALL_CONFERENCES.len())],
                coach: coaches[rng.gen_range(0..coaches.len())],
                football: teams.len() % 2 == 0,
            });
        }
        // Assign players to teams and give them positions.
        let footballers = by_prof(&people, Profession::FootballPlayer);
        let baseballers = by_prof(&people, Profession::BaseballPlayer);
        let football_teams: Vec<TeamId> =
            teams.iter().enumerate().filter(|(_, t)| t.football).map(|(i, _)| i).collect();
        let baseball_teams: Vec<TeamId> =
            teams.iter().enumerate().filter(|(_, t)| !t.football).map(|(i, _)| i).collect();
        for &p in &footballers {
            people[p].team = Some(football_teams[rng.gen_range(0..football_teams.len())]);
            people[p].position =
                Some(FOOTBALL_POSITIONS[rng.gen_range(0..FOOTBALL_POSITIONS.len())].to_string());
        }
        for &p in &baseballers {
            people[p].team = Some(baseball_teams[rng.gen_range(0..baseball_teams.len())]);
            people[p].position =
                Some(BASEBALL_POSITIONS[rng.gen_range(0..BASEBALL_POSITIONS.len())].to_string());
        }

        // Books.
        let authors = by_prof(&people, Profession::Author);
        let books: Vec<Book> = (0..cfg.n_books)
            .map(|_| Book {
                title: format!(
                    "the {} of {}",
                    FILM_NOUNS[rng.gen_range(0..FILM_NOUNS.len())],
                    CITY_PREFIXES[rng.gen_range(0..CITY_PREFIXES.len())]
                ),
                author: authors[rng.gen_range(0..authors.len())],
                year: rng.gen_range(1900..2022),
            })
            .collect();

        // Universities, rivers, elections.
        let universities: Vec<University> = (0..cfg.n_universities)
            .map(|i| {
                let city = rng.gen_range(0..cities.len());
                let name = if i % 2 == 0 {
                    format!("university of {}", cities[city].name)
                } else {
                    format!("{} state university", cities[city].name)
                };
                University { name, city }
            })
            .collect();
        let rivers: Vec<River> = (0..cfg.n_rivers)
            .map(|_| River {
                name: format!("{} river", CITY_PREFIXES[rng.gen_range(0..CITY_PREFIXES.len())]),
                country: rng.gen_range(0..countries.len()),
                length_km: rng.gen_range(40..3200),
            })
            .collect();
        let elections: Vec<Election> = (0..cfg.n_elections)
            .map(|_| {
                let country = rng.gen_range(0..countries.len());
                let year = rng.gen_range(1980..2022);
                Election {
                    name: format!("{year} {} general election", countries[country].name),
                    country,
                    year,
                }
            })
            .collect();

        // Awards with winners/nominees.
        let awards: Vec<Award> = (0..cfg.n_awards)
            .map(|_| {
                let n_nom = rng.gen_range(2..5);
                Award {
                    name: format!(
                        "golden {} award",
                        FILM_NOUNS[rng.gen_range(0..FILM_NOUNS.len())]
                    ),
                    winner: rng.gen_range(0..people.len()),
                    nominees: (0..n_nom).map(|_| rng.gen_range(0..people.len())).collect(),
                }
            })
            .collect();

        // TV programs.
        let tv_programs: Vec<TvProgram> = (0..cfg.n_tv_programs)
            .map(|_| TvProgram {
                name: format!(
                    "the {} {} show",
                    FILM_ADJECTIVES[rng.gen_range(0..FILM_ADJECTIVES.len())],
                    FILM_NOUNS[rng.gen_range(0..FILM_NOUNS.len())]
                ),
                country: rng.gen_range(0..countries.len()),
                company: rng.gen_range(0..companies.len()),
            })
            .collect();

        // Kingdoms ruled by monarchs; inventions with inventors.
        let monarchs = by_prof(&people, Profession::Monarch);
        let kingdoms: Vec<Kingdom> = KINGDOMS
            .iter()
            .map(|&name| Kingdom {
                name: name.to_string(),
                monarch: monarchs[rng.gen_range(0..monarchs.len())],
            })
            .collect();
        let inventions: Vec<Invention> = INVENTIONS
            .iter()
            .take(cfg.n_inventions)
            .map(|&name| Invention {
                name: name.to_string(),
                inventor: rng.gen_range(0..people.len()),
                year: rng.gen_range(1800..1990),
            })
            .collect();

        KnowledgeBase {
            countries,
            cities,
            people,
            films,
            teams,
            companies,
            books,
            universities,
            rivers,
            elections,
            awards,
            tv_programs,
            kingdoms,
            inventions,
            religions: RELIGIONS.to_vec(),
            constellations: CONSTELLATIONS.to_vec(),
            organisms: ORGANISMS.to_vec(),
            genres: GENRES.to_vec(),
        }
    }

    /// People holding a given profession.
    pub fn people_with(&self, p: Profession) -> Vec<PersonId> {
        self.people
            .iter()
            .enumerate()
            .filter(|(_, x)| x.professions.contains(&p))
            .map(|(i, _)| i)
            .collect()
    }

    /// Convenience accessors used throughout the generators.
    pub fn city_name(&self, id: CityId) -> &str {
        &self.cities[id].name
    }

    pub fn country_name(&self, id: CountryId) -> &str {
        &self.countries[id].name
    }

    pub fn person_name(&self, id: PersonId) -> &str {
        &self.people[id].name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = KnowledgeBase::generate(&KbConfig::default(), 42);
        let b = KnowledgeBase::generate(&KbConfig::default(), 42);
        assert_eq!(a.people.len(), b.people.len());
        for (x, y) in a.people.iter().zip(b.people.iter()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.birth_city, y.birth_city);
        }
        for (x, y) in a.films.iter().zip(b.films.iter()) {
            assert_eq!(x.title, y.title);
            assert_eq!(x.directors, y.directors);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = KnowledgeBase::generate(&KbConfig::default(), 1);
        let b = KnowledgeBase::generate(&KbConfig::default(), 2);
        let same = a.people.iter().zip(b.people.iter()).filter(|(x, y)| x.name == y.name).count();
        assert!(same < a.people.len() / 2, "seeds should decorrelate: {same} identical");
    }

    #[test]
    fn every_profession_is_populated() {
        let kb = KnowledgeBase::generate(&KbConfig::default(), 42);
        for p in ALL_PROFESSIONS {
            assert!(kb.people_with(p).len() >= 6, "profession {p:?} underpopulated");
        }
    }

    #[test]
    fn referential_integrity() {
        let kb = KnowledgeBase::generate(&KbConfig::default(), 7);
        for p in &kb.people {
            assert!(p.birth_city < kb.cities.len());
            assert!(p.nationality < kb.countries.len());
            assert_eq!(
                p.nationality, kb.cities[p.birth_city].country,
                "nationality = birth country"
            );
            if let Some(t) = p.team {
                assert!(t < kb.teams.len());
            }
        }
        for f in &kb.films {
            for &d in &f.directors {
                assert!(kb.people[d].professions.contains(&Profession::Director));
            }
            for &pr in &f.producers {
                assert!(kb.people[pr].professions.contains(&Profession::Producer));
            }
            assert!(kb.people[f.story_by].professions.contains(&Profession::ScreenWriter));
            assert!(f.production_company < kb.companies.len());
        }
        for t in &kb.teams {
            assert!(kb.people[t.coach].professions.contains(&Profession::FootballCoach));
            assert!(t.city < kb.cities.len());
        }
        for k in &kb.kingdoms {
            assert!(kb.people[k.monarch].professions.contains(&Profession::Monarch));
        }
    }

    #[test]
    fn athletes_have_team_and_position() {
        let kb = KnowledgeBase::generate(&KbConfig::default(), 9);
        for &p in &kb.people_with(Profession::FootballPlayer) {
            let person = &kb.people[p];
            assert!(person.team.is_some(), "{} has no team", person.name);
            assert!(person.position.is_some());
            let team = person.team.unwrap();
            assert!(kb.teams[team].football);
        }
        for &p in &kb.people_with(Profession::BaseballPlayer) {
            let person = &kb.people[p];
            assert!(person.team.is_some());
            assert!(person.position.is_some());
            assert!(!kb.teams[person.team.unwrap()].football);
        }
    }

    #[test]
    fn name_collisions_exist() {
        // The §1 ambiguity: at least one full name shared by 2+ people.
        let kb = KnowledgeBase::generate(&KbConfig::default(), 42);
        let mut seen = std::collections::HashMap::new();
        for p in &kb.people {
            *seen.entry(p.name.as_str()).or_insert(0usize) += 1;
        }
        assert!(
            seen.values().any(|&c| c >= 2),
            "expected duplicated person names for the ambiguity experiments"
        );
    }
}
