//! Static name pools used by the knowledge-base generator.
//!
//! Entity names are combinatorial (first × last, prefix × suffix) so pools
//! of a few dozen parts yield thousands of distinct, pronounceable,
//! WordPiece-friendly names. First/last pools are deliberately small enough
//! that *full-name collisions across professions occur* — the paper's
//! "George Miller the director vs. George Miller the producer" ambiguity
//! (§1) is reproduced by construction.

pub const FIRST_NAMES: &[&str] = &[
    "george", "john", "david", "judy", "warren", "bill", "doug", "darla", "sam", "dick", "simon",
    "max", "thomas", "derrick", "anna", "maria", "peter", "laura", "frank", "helen", "oscar",
    "ruth", "victor", "alice", "henry", "clara", "martin", "elena", "paul", "nina", "walter",
    "irene", "felix", "diana", "hugo", "sofia", "leon", "vera", "karl", "ada",
];

pub const LAST_NAMES: &[&str] = &[
    "miller", "coleman", "morris", "mitchell", "lasseter", "ranft", "anderson", "bowers", "fell",
    "clement", "nye", "browne", "tyner", "henry", "walker", "fisher", "baker", "mason", "porter",
    "turner", "carver", "fletcher", "harper", "sawyer", "tanner", "weaver", "archer", "brewer",
    "cooper", "dyer", "farmer", "gardner", "hunter", "keller", "lambert", "marsh", "norton",
    "osborn", "parker", "quinn", "reyes", "shepard", "thorne", "vance", "webster", "york",
    "zeller", "abbott", "barlow", "crane",
];

pub const CITY_PREFIXES: &[&str] = &[
    "spring", "river", "oak", "maple", "stone", "clear", "fair", "green", "silver", "north",
    "south", "east", "west", "bright", "lake", "hill", "wood", "ash", "elm", "iron", "golden",
    "red", "blue", "white", "high", "low", "mill", "salt", "sand", "snow",
];

pub const CITY_SUFFIXES: &[&str] = &[
    "field", "ton", "ville", "burg", "ford", "haven", "port", "dale", "wick", "mouth", "bridge",
    "crest", "view", "side", "gate", "fall", "brook", "land", "stead", "moor",
];

/// Country names with the languages spoken there (for the
/// `country.languages_spoken` relation and probing templates).
pub const COUNTRIES: &[(&str, &str)] = &[
    ("astoria", "astorian"),
    ("belloria", "bellorian"),
    ("cordova", "cordovan"),
    ("drelund", "drelundic"),
    ("esperia", "esperian"),
    ("fenwick", "fenwickian"),
    ("galdora", "galdoran"),
    ("hestland", "hestlandic"),
    ("ithria", "ithrian"),
    ("jorvania", "jorvanian"),
    ("kestrelia", "kestrelian"),
    ("lunova", "lunovan"),
    ("mardovia", "mardovian"),
    ("nordhaven", "nordhavian"),
    ("ostrelia", "ostrelian"),
    ("pelloria", "pellorian"),
    ("quintara", "quintaran"),
    ("rovenia", "rovenian"),
    ("solmark", "solmarkian"),
    ("tavaria", "tavarian"),
    ("umbria", "umbrian"),
    ("veldania", "veldanian"),
    ("westoria", "westorian"),
    ("zephyria", "zephyrian"),
];

pub const FILM_ADJECTIVES: &[&str] = &[
    "silent",
    "crimson",
    "hidden",
    "golden",
    "broken",
    "frozen",
    "burning",
    "endless",
    "fading",
    "rising",
    "shattered",
    "velvet",
    "hollow",
    "radiant",
    "wandering",
    "midnight",
    "distant",
    "restless",
    "lonely",
    "electric",
];

pub const FILM_NOUNS: &[&str] = &[
    "horizon", "garden", "empire", "voyage", "harbor", "shadow", "river", "crown", "mirror",
    "orchard", "lantern", "compass", "canyon", "meadow", "forest", "island", "summit", "tempest",
    "whisper", "carnival",
];

pub const TEAM_MASCOTS: &[&str] = &[
    "tigers",
    "eagles",
    "wolves",
    "hawks",
    "bears",
    "lions",
    "falcons",
    "panthers",
    "ravens",
    "bison",
    "cougars",
    "stallions",
    "vipers",
    "storm",
    "comets",
    "titans",
];

pub const FOOTBALL_CONFERENCES: &[&str] = &[
    "atlantic conference",
    "pacific conference",
    "mountain conference",
    "central conference",
    "coastal conference",
    "valley conference",
    "summit conference",
    "pioneer conference",
];

pub const FOOTBALL_POSITIONS: &[&str] = &[
    "quarterback",
    "running back",
    "wide receiver",
    "linebacker",
    "cornerback",
    "safety",
    "tight end",
    "kicker",
];

pub const BASEBALL_POSITIONS: &[&str] = &[
    "pitcher",
    "catcher",
    "shortstop",
    "first baseman",
    "second baseman",
    "third baseman",
    "outfielder",
    "designated hitter",
];

pub const GENRES: &[&str] =
    &["jazz", "folk", "blues", "rock", "soul", "opera", "ambient", "swing", "choral", "disco"];

pub const RELIGIONS: &[&str] =
    &["solarism", "lunarism", "verdism", "aquarism", "terrism", "pyrism", "aetherism", "umbrism"];

pub const CONSTELLATIONS: &[&str] = &[
    "the archer",
    "the serpent",
    "the lantern",
    "the twins",
    "the mariner",
    "the harp",
    "the crane",
    "the anvil",
    "the chalice",
    "the plough",
    "the fox",
    "the beacon",
];

pub const ORGANISMS: &[&str] = &[
    "mossfin newt",
    "silver bracken",
    "dune beetle",
    "glass shrimp",
    "marsh wren",
    "thorn lizard",
    "cave moth",
    "reef urchin",
    "pine marten",
    "bog orchid",
    "river lamprey",
    "stone crab",
    "heath viper",
    "cliff swallow",
    "fen snail",
];

pub const KINGDOMS: &[&str] = &[
    "kingdom of avenor",
    "kingdom of brethia",
    "kingdom of caldora",
    "kingdom of drunmore",
    "kingdom of elandia",
    "kingdom of farholt",
    "kingdom of grenwald",
    "kingdom of hollin",
];

pub const INVENTIONS: &[&str] = &[
    "the rotary loom",
    "the arc furnace",
    "the tide clock",
    "the vapor press",
    "the coil engine",
    "the glass kiln",
    "the signal lamp",
    "the chain pump",
    "the flux welder",
    "the drift anchor",
];

pub const COMPANY_SUFFIXES: &[&str] =
    &["pictures", "studios", "films", "media", "works", "productions", "entertainment", "group"];

pub const BROWSERS: &[&str] =
    &["chrome", "firefox", "safari", "edge", "opera", "brave", "vivaldi", "konqueror"];

pub const JOB_TITLES: &[&str] = &[
    "software engineer",
    "data scientist",
    "product manager",
    "sales associate",
    "account executive",
    "marketing analyst",
    "customer support agent",
    "hr generalist",
    "financial controller",
    "operations lead",
    "ux designer",
    "qa engineer",
    "devops engineer",
    "technical writer",
    "recruiter",
    "legal counsel",
];

pub const SEARCH_TERMS: &[&str] = &[
    "remote backend jobs",
    "entry level marketing",
    "senior designer salary",
    "part time warehouse",
    "data analyst internship",
    "nurse practitioner openings",
    "civil engineer contract",
    "teacher assistant roles",
    "delivery driver near me",
    "startup equity questions",
];

pub const STATUS_WORDS: &[&str] =
    &["active", "inactive", "pending", "archived", "approved", "rejected", "draft", "closed"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_nonempty_and_distinct() {
        assert!(FIRST_NAMES.len() >= 30);
        assert!(LAST_NAMES.len() >= 40);
        assert_eq!(COUNTRIES.len(), 24);
        let mut names: Vec<&str> = COUNTRIES.iter().map(|c| c.0).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 24, "country names must be unique");
    }

    #[test]
    fn clean_genre_pool_is_ascii() {
        for g in GENRES {
            assert!(g.is_ascii(), "genre {g} must be ascii");
        }
    }

    #[test]
    fn combinatorial_pools_yield_enough_entities() {
        assert!(CITY_PREFIXES.len() * CITY_SUFFIXES.len() >= 500);
        assert!(FILM_ADJECTIVES.len() * FILM_NOUNS.len() >= 300);
    }
}
