//! Pretraining corpus generation.
//!
//! Stands in for Wikipedia in BERT's pretraining: every fact in the
//! [`KnowledgeBase`] is verbalized through simple templates, with
//! *frequency control per domain*. The paper's probing analysis (Tables
//! 12-13) found that well-probed types (election, river, religion, author,
//! university) are frequent in the pretraining corpus while poorly-probed
//! ones (monarch, constellation, invention, organism, kingdom) are rare —
//! we reproduce that mechanism by emitting few sentences for the rare
//! domains.

use crate::kb::{KnowledgeBase, Profession};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How many times each fact family is verbalized.
#[derive(Clone, Debug)]
pub struct CorpusConfig {
    /// Repetitions for frequent domains (people, films, cities, teams).
    pub common_reps: usize,
    /// Repetitions for rare domains (kingdoms, constellations, organisms,
    /// inventions, monarch facts) — kept low so probing ranks them poorly,
    /// as in Table 12.
    pub rare_reps: usize,
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig { common_reps: 3, rare_reps: 1, seed: 42 }
    }
}

/// Generates the full sentence corpus. Deterministic in `(kb, cfg)`.
pub fn generate_corpus(kb: &KnowledgeBase, cfg: &CorpusConfig) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out: Vec<String> = Vec::new();
    let push_n = |out: &mut Vec<String>, n: usize, s: String| {
        for _ in 0..n {
            out.push(s.clone());
        }
    };
    let c = cfg.common_reps;
    let r = cfg.rare_reps.min(cfg.common_reps);

    // People: professions, birthplaces, residences, nationality.
    for p in &kb.people {
        for prof in &p.professions {
            // Monarch facts are in the rare tier.
            let reps = if *prof == Profession::Monarch { r } else { c };
            push_n(&mut out, reps, format!("{} is a {}", p.name, prof.word()));
        }
        push_n(&mut out, c, format!("{} was born in {}", p.name, kb.city_name(p.birth_city)));
        push_n(&mut out, c, format!("{} lived in {}", p.name, kb.city_name(p.lived_city)));
        push_n(&mut out, c, format!("{} is from {}", p.name, kb.country_name(p.nationality)));
        if let (Some(team), Some(pos)) = (p.team, p.position.as_ref()) {
            push_n(&mut out, c, format!("{} plays for {}", p.name, kb.teams[team].name));
            push_n(&mut out, c, format!("{} plays {}", p.name, pos));
        }
    }

    // Films.
    for f in &kb.films {
        push_n(&mut out, c, format!("{} is a film", f.title));
        for &d in &f.directors {
            push_n(&mut out, c, format!("{} was directed by {}", f.title, kb.person_name(d)));
        }
        for &pr in &f.producers {
            push_n(&mut out, c, format!("{} was produced by {}", f.title, kb.person_name(pr)));
        }
        push_n(
            &mut out,
            c,
            format!("the story of {} was written by {}", f.title, kb.person_name(f.story_by)),
        );
        push_n(
            &mut out,
            c,
            format!("{} was produced by {}", f.title, kb.companies[f.production_company].name),
        );
        push_n(&mut out, c, format!("{} was released in {}", f.title, kb.country_name(f.country)));
        push_n(&mut out, r, format!("{} is a {} film from {}", f.title, f.genre, f.year));
    }

    // Cities and countries.
    for city in &kb.cities {
        push_n(
            &mut out,
            c,
            format!("{} is a city in {}", city.name, kb.country_name(city.country)),
        );
        push_n(&mut out, r, format!("{} has a population of {}", city.name, city.population));
        if let Some(a) = &city.airport {
            push_n(&mut out, c, format!("{a} is an airport near {}", city.name));
        }
    }
    for country in &kb.countries {
        push_n(&mut out, c, format!("{} is a country", country.name));
        push_n(&mut out, c, format!("{} is spoken in {}", country.language, country.name));
    }

    // Teams.
    for t in &kb.teams {
        let sport = if t.football { "football" } else { "baseball" };
        push_n(&mut out, c, format!("{} is a {} team", t.name, sport));
        push_n(&mut out, c, format!("{} is based in {}", t.name, kb.city_name(t.city)));
        push_n(&mut out, c, format!("{} is coached by {}", t.name, kb.person_name(t.coach)));
        if t.football {
            push_n(&mut out, c, format!("{} plays in the {}", t.name, t.conference));
        }
    }

    // Books, universities, rivers, elections (frequent tier — these probe
    // well in Table 12).
    for b in &kb.books {
        push_n(&mut out, c, format!("{} is a book", b.title));
        push_n(&mut out, c, format!("{} was written by {}", b.title, kb.person_name(b.author)));
    }
    for u in &kb.universities {
        push_n(&mut out, c, format!("{} is a university", u.name));
        push_n(&mut out, c, format!("{} is located in {}", u.name, kb.city_name(u.city)));
    }
    for riv in &kb.rivers {
        push_n(&mut out, c, format!("{} is a river in {}", riv.name, kb.country_name(riv.country)));
        push_n(&mut out, r, format!("{} is {} kilometers long", riv.name, riv.length_km));
    }
    for e in &kb.elections {
        push_n(&mut out, c, format!("the {} was an election", e.name));
        push_n(&mut out, c, format!("the {} was held in {}", e.name, kb.country_name(e.country)));
    }
    for rel in &kb.religions {
        push_n(&mut out, c, format!("{rel} is a religion"));
    }

    // Awards and TV programs.
    for a in &kb.awards {
        push_n(&mut out, c, format!("the {} was won by {}", a.name, kb.person_name(a.winner)));
        for &n in &a.nominees {
            push_n(&mut out, r, format!("{} was nominated for the {}", kb.person_name(n), a.name));
        }
    }
    for tv in &kb.tv_programs {
        push_n(&mut out, c, format!("{} is a television program", tv.name));
        push_n(&mut out, r, format!("{} is from {}", tv.name, kb.country_name(tv.country)));
    }

    // Rare tier: kingdoms, constellations, organisms, inventions.
    for k in &kb.kingdoms {
        push_n(&mut out, r, format!("the {} is a kingdom", k.name));
        push_n(
            &mut out,
            r,
            format!("{} is a monarch of the {}", kb.person_name(k.monarch), k.name),
        );
    }
    for con in &kb.constellations {
        push_n(&mut out, r, format!("{con} is a constellation"));
    }
    for org in &kb.organisms {
        push_n(&mut out, r, format!("the {org} is an organism"));
    }
    for inv in &kb.inventions {
        push_n(&mut out, r, format!("{} is an invention", inv.name));
        push_n(
            &mut out,
            r,
            format!("{} was invented by {}", inv.name, kb.person_name(inv.inventor)),
        );
    }
    for g in &kb.genres {
        push_n(&mut out, c, format!("{g} is a genre of music"));
    }

    // Shuffle so mini-batches mix domains.
    for i in (1..out.len()).rev() {
        let j = rng.gen_range(0..=i);
        out.swap(i, j);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::{KbConfig, KnowledgeBase};

    fn corpus() -> (KnowledgeBase, Vec<String>) {
        let kb = KnowledgeBase::generate(&KbConfig::default(), 42);
        let c = generate_corpus(&kb, &CorpusConfig::default());
        (kb, c)
    }

    #[test]
    fn corpus_is_substantial_and_deterministic() {
        let (_, a) = corpus();
        let (_, b) = corpus();
        assert!(a.len() > 5_000, "corpus too small: {}", a.len());
        assert_eq!(a, b);
    }

    #[test]
    fn common_domains_outnumber_rare_domains() {
        let (_, c) = corpus();
        let count = |pat: &str| c.iter().filter(|s| s.contains(pat)).count();
        let director = count("is a director");
        let monarch = count("is a monarch");
        let kingdom = count("is a kingdom");
        let city = count("is a city in");
        assert!(director > monarch, "director {director} vs monarch {monarch}");
        assert!(city > kingdom * 3, "city {city} vs kingdom {kingdom}");
    }

    #[test]
    fn facts_are_verbalized_consistently_with_kb() {
        let (kb, c) = corpus();
        // Every film's director sentence must exist.
        let f = &kb.films[0];
        let d = kb.person_name(f.directors[0]);
        let expect = format!("{} was directed by {}", f.title, d);
        assert!(c.contains(&expect), "missing: {expect}");
        // Every person's birthplace sentence must exist.
        let p = &kb.people[0];
        let expect = format!("{} was born in {}", p.name, kb.city_name(p.birth_city));
        assert!(c.contains(&expect));
    }

    #[test]
    fn sentences_are_lowercase_ascii() {
        let (_, c) = corpus();
        for s in c.iter().take(500) {
            assert!(s.is_ascii(), "non-ascii sentence: {s}");
            assert_eq!(s, &s.to_lowercase(), "sentence not lowercase: {s}");
        }
    }
}
