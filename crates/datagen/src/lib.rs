//! # doduo-datagen
//!
//! Synthetic data substrate for the DODUO reproduction (DESIGN.md §1):
//!
//! * [`kb`] — a closed-world knowledge base (people, films, cities, teams,
//!   books, kingdoms, ...) standing in for Freebase, with the §1 name
//!   ambiguities reproduced by construction.
//! * [`corpus`] — verbalizes every KB fact into template sentences (the
//!   "Wikipedia" the LM pretrains on), with per-domain frequency control so
//!   the probing analysis (Tables 12-13) finds frequent domains probe well
//!   and rare ones poorly.
//! * [`wikitable`] — the WikiTable-style benchmark: multi-label Freebase
//!   types + relations from the subject column (§5.1).
//! * [`viznet`] — the VizNet-style benchmark: the paper's 78 types with
//!   engineered numeric fractions (Table 5) and co-occurrence themes.
//! * [`casestudy`] — the §7 HR-database clustering scenario (10 tables,
//!   ~50 columns, 15 ground-truth clusters).
//!
//! Everything is deterministic in an explicit `u64` seed.

pub mod casestudy;
pub mod corpus;
pub mod dirty;
pub mod kb;
pub mod names;
pub mod viznet;
pub mod wikitable;

pub use casestudy::{generate_case_study, CaseStudy, CaseStudyConfig, HrCluster, ALL_CLUSTERS};
pub use corpus::{generate_corpus, CorpusConfig};
pub use dirty::{corrupt_dataset, corruption_rate, DirtyConfig};
pub use kb::{KbConfig, KnowledgeBase, Profession};
pub use viznet::{
    gen_value, generate_viznet, multi_column_only, VizNetConfig, NUMERIC_STRESS_TYPES, VIZNET_TYPES,
};
pub use wikitable::{generate_wikitable, WikiTableConfig};
