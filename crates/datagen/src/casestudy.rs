//! Case-study data: the enterprise HR database of §7.
//!
//! The paper filters an in-production HR warehouse for "jobsearch" and
//! "review" tables — 10 tables, 50 columns — and clusters the columns into
//! 15 ground-truth groups (date, IP address, job title, two timestamp kinds,
//! counts, status, file path, browser, location, search term, rating,
//! company ID, review ID, user ID). We synthesize that exact shape: columns
//! of the same semantic cluster get *different names across tables* (the
//! paper's motivation: naming conventions drift between teams), so clustering
//! by name alone is unreliable while values carry the signal.

use crate::kb::KnowledgeBase;
use crate::names::{BROWSERS, JOB_TITLES, SEARCH_TERMS, STATUS_WORDS};
use doduo_table::{Column, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The 15 ground-truth clusters of §7.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HrCluster {
    Date,
    IpAddress,
    JobTitle,
    TimestampUnix,
    TimestampHhmm,
    Counts,
    Status,
    FilePath,
    Browser,
    Location,
    SearchTerm,
    Rating,
    CompanyId,
    ReviewId,
    UserId,
}

pub const ALL_CLUSTERS: [HrCluster; 15] = [
    HrCluster::Date,
    HrCluster::IpAddress,
    HrCluster::JobTitle,
    HrCluster::TimestampUnix,
    HrCluster::TimestampHhmm,
    HrCluster::Counts,
    HrCluster::Status,
    HrCluster::FilePath,
    HrCluster::Browser,
    HrCluster::Location,
    HrCluster::SearchTerm,
    HrCluster::Rating,
    HrCluster::CompanyId,
    HrCluster::ReviewId,
    HrCluster::UserId,
];

impl HrCluster {
    /// Human-readable cluster label (the paper's ground-truth list).
    pub fn label(self) -> &'static str {
        match self {
            HrCluster::Date => "date",
            HrCluster::IpAddress => "IP address",
            HrCluster::JobTitle => "job title",
            HrCluster::TimestampUnix => "timestamp (unixtime)",
            HrCluster::TimestampHhmm => "timestamp (hhmm)",
            HrCluster::Counts => "counts",
            HrCluster::Status => "status",
            HrCluster::FilePath => "file path",
            HrCluster::Browser => "browser",
            HrCluster::Location => "location",
            HrCluster::SearchTerm => "search term",
            HrCluster::Rating => "rating",
            HrCluster::CompanyId => "company ID",
            HrCluster::ReviewId => "review ID",
            HrCluster::UserId => "user ID",
        }
    }

    /// Column names used by different teams for this cluster. The variety is
    /// the point: name-based matching must work across synonyms.
    fn name_pool(self) -> &'static [&'static str] {
        match self {
            HrCluster::Date => &["date", "created_date", "dt", "event_date"],
            HrCluster::IpAddress => &["ip", "ip_address", "client_ip", "remote_addr"],
            HrCluster::JobTitle => &["job_title", "title", "position_name", "role"],
            HrCluster::TimestampUnix => &["ts", "unix_time", "created_at_epoch", "event_ts"],
            HrCluster::TimestampHhmm => &["time", "hhmm", "clock_time", "time_of_day"],
            HrCluster::Counts => &["count", "num_events", "clicks", "impressions"],
            HrCluster::Status => &["status", "state", "review_status", "flag"],
            HrCluster::FilePath => &["path", "file_path", "resource", "asset_path"],
            HrCluster::Browser => &["browser", "user_agent_family", "client", "ua"],
            HrCluster::Location => &["location", "city", "job_location", "geo"],
            HrCluster::SearchTerm => &["search_term", "query", "keywords", "search_text"],
            HrCluster::Rating => &["rating", "stars", "score", "review_rating"],
            HrCluster::CompanyId => &["company_id", "employer_id", "comp_id", "org_id"],
            HrCluster::ReviewId => &["review_id", "rev_id", "feedback_id", "review_key"],
            HrCluster::UserId => &["user_id", "uid", "member_id", "account_id"],
        }
    }

    /// Generates one cell value of this cluster.
    fn gen_value(self, kb: &KnowledgeBase, rng: &mut StdRng) -> String {
        match self {
            HrCluster::Date => format!(
                "{}-{:02}-{:02}",
                rng.gen_range(2015..2023),
                rng.gen_range(1..13),
                rng.gen_range(1..29)
            ),
            HrCluster::IpAddress => format!(
                "{}.{}.{}.{}",
                rng.gen_range(1..256),
                rng.gen_range(0..256),
                rng.gen_range(0..256),
                rng.gen_range(1..255)
            ),
            HrCluster::JobTitle => JOB_TITLES[rng.gen_range(0..JOB_TITLES.len())].to_string(),
            HrCluster::TimestampUnix => rng.gen_range(1_500_000_000u64..1_700_000_000).to_string(),
            HrCluster::TimestampHhmm => {
                format!("{:02}:{:02}", rng.gen_range(0..24), rng.gen_range(0..60))
            }
            HrCluster::Counts => rng.gen_range(0..50_000u32).to_string(),
            HrCluster::Status => STATUS_WORDS[rng.gen_range(0..STATUS_WORDS.len())].to_string(),
            HrCluster::FilePath => format!(
                "/data/{}/{}.{}",
                ["logs", "exports", "uploads", "reports"][rng.gen_range(0..4usize)],
                ["summary", "batch", "profile", "index"][rng.gen_range(0..4usize)],
                ["csv", "json", "parquet"][rng.gen_range(0..3usize)]
            ),
            HrCluster::Browser => BROWSERS[rng.gen_range(0..BROWSERS.len())].to_string(),
            HrCluster::Location => kb.cities[rng.gen_range(0..kb.cities.len())].name.clone(),
            HrCluster::SearchTerm => SEARCH_TERMS[rng.gen_range(0..SEARCH_TERMS.len())].to_string(),
            HrCluster::Rating => format!("{:.1}", rng.gen_range(1.0..5.05)),
            HrCluster::CompanyId => format!("c{:06}", rng.gen_range(0..1_000_000)),
            HrCluster::ReviewId => format!("r{:08}", rng.gen_range(0..100_000_000)),
            HrCluster::UserId => format!("u{:07}", rng.gen_range(0..10_000_000)),
        }
    }
}

/// One case-study column with its ground-truth cluster.
#[derive(Clone, Debug)]
pub struct HrColumn {
    /// Which table it came from and its position there.
    pub table_idx: usize,
    pub col_idx: usize,
    pub cluster: HrCluster,
}

/// The §7 scenario: tables plus ground-truth cluster assignments.
#[derive(Clone, Debug)]
pub struct CaseStudy {
    pub tables: Vec<Table>,
    pub columns: Vec<HrColumn>,
}

/// Generation knobs (defaults match the paper: 10 tables, ~50 columns).
#[derive(Clone, Debug)]
pub struct CaseStudyConfig {
    pub n_tables: usize,
    pub min_cols: usize,
    pub max_cols: usize,
    pub n_rows: usize,
    pub seed: u64,
}

impl Default for CaseStudyConfig {
    fn default() -> Self {
        CaseStudyConfig { n_tables: 10, min_cols: 4, max_cols: 6, n_rows: 8, seed: 42 }
    }
}

/// Generates the case-study tables. Every cluster appears in at least two
/// tables (otherwise clustering it would be trivial), and tables mix
/// "jobsearch" and "review" flavors as in the paper's keyword filter.
pub fn generate_case_study(kb: &KnowledgeBase, cfg: &CaseStudyConfig) -> CaseStudy {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut tables = Vec::with_capacity(cfg.n_tables);
    let mut columns = Vec::new();

    // Build a deck guaranteeing every cluster occurs >= 2 times, then pad
    // with random clusters.
    let total_cols: usize =
        (0..cfg.n_tables).map(|_| rng.gen_range(cfg.min_cols..=cfg.max_cols)).sum();
    let mut deck: Vec<HrCluster> = Vec::with_capacity(total_cols);
    for c in ALL_CLUSTERS {
        deck.push(c);
        deck.push(c);
    }
    while deck.len() < total_cols {
        deck.push(ALL_CLUSTERS[rng.gen_range(0..ALL_CLUSTERS.len())]);
    }
    for i in (1..deck.len()).rev() {
        let j = rng.gen_range(0..=i);
        deck.swap(i, j);
    }

    let mut deck_iter = deck.into_iter();
    for ti in 0..cfg.n_tables {
        let n_cols = rng.gen_range(cfg.min_cols..=cfg.max_cols);
        let flavor = if ti % 2 == 0 { "jobsearch" } else { "review" };
        let mut cols = Vec::with_capacity(n_cols);
        let mut used_names: Vec<String> = Vec::new();
        for ci in 0..n_cols {
            let Some(cluster) = deck_iter.next() else { break };
            let pool = cluster.name_pool();
            // Pick a name not yet used in this table.
            let mut name = pool[rng.gen_range(0..pool.len())].to_string();
            let mut tries = 0;
            while used_names.contains(&name) && tries < 8 {
                name = pool[rng.gen_range(0..pool.len())].to_string();
                tries += 1;
            }
            if used_names.contains(&name) {
                name = format!("{name}_{ci}");
            }
            used_names.push(name.clone());
            let values: Vec<String> =
                (0..cfg.n_rows).map(|_| cluster.gen_value(kb, &mut rng)).collect();
            cols.push(Column::with_name(name, values));
            columns.push(HrColumn { table_idx: ti, col_idx: ci, cluster });
        }
        tables.push(Table::new(format!("{flavor}_{ti}"), cols));
    }
    CaseStudy { tables, columns }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::{KbConfig, KnowledgeBase};

    fn study() -> CaseStudy {
        let kb = KnowledgeBase::generate(&KbConfig::default(), 42);
        generate_case_study(&kb, &CaseStudyConfig::default())
    }

    #[test]
    fn shape_matches_the_paper() {
        let s = study();
        assert_eq!(s.tables.len(), 10);
        let n_cols: usize = s.tables.iter().map(|t| t.n_cols()).sum();
        assert!((40..=60).contains(&n_cols), "≈50 columns, got {n_cols}");
        assert_eq!(n_cols, s.columns.len());
    }

    #[test]
    fn every_cluster_appears_at_least_twice() {
        let s = study();
        for c in ALL_CLUSTERS {
            let n = s.columns.iter().filter(|h| h.cluster == c).count();
            assert!(n >= 2, "cluster {c:?} appears {n} times");
        }
    }

    #[test]
    fn same_cluster_uses_varied_names_across_tables() {
        let s = study();
        let mut names_per_cluster: std::collections::HashMap<HrCluster, Vec<String>> =
            std::collections::HashMap::new();
        for h in &s.columns {
            let name = s.tables[h.table_idx].columns[h.col_idx]
                .name
                .clone()
                .expect("case-study columns are named");
            names_per_cluster.entry(h.cluster).or_default().push(name);
        }
        // At least a third of clusters must use >1 distinct name.
        let varied = names_per_cluster
            .values()
            .filter(|names| {
                let uniq: std::collections::HashSet<&String> = names.iter().collect();
                uniq.len() > 1
            })
            .count();
        assert!(varied >= 5, "only {varied} clusters have name variety");
    }

    #[test]
    fn values_look_like_their_cluster() {
        let kb = KnowledgeBase::generate(&KbConfig::default(), 1);
        let mut rng = StdRng::seed_from_u64(2);
        let ip = HrCluster::IpAddress.gen_value(&kb, &mut rng);
        assert_eq!(ip.split('.').count(), 4);
        let ts = HrCluster::TimestampUnix.gen_value(&kb, &mut rng);
        assert!(ts.parse::<u64>().is_ok());
        let hhmm = HrCluster::TimestampHhmm.gen_value(&kb, &mut rng);
        assert_eq!(hhmm.len(), 5);
        assert_eq!(&hhmm[2..3], ":");
        let rating = HrCluster::Rating.gen_value(&kb, &mut rng);
        let r: f32 = rating.parse().unwrap();
        assert!((1.0..=5.1).contains(&r));
        let path = HrCluster::FilePath.gen_value(&kb, &mut rng);
        assert!(path.starts_with("/data/"));
    }

    #[test]
    fn table_names_carry_the_keyword_filter() {
        let s = study();
        for t in &s.tables {
            assert!(
                t.id.starts_with("jobsearch") || t.id.starts_with("review"),
                "table id {}",
                t.id
            );
        }
    }
}
