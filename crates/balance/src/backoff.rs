//! Capped exponential backoff with deterministic jitter.
//!
//! Both retry sites in the balancer — re-dispatching a failed request and
//! re-spawning a crashed replica — use the same discipline: the delay
//! doubles per consecutive failure up to a cap, and each delay is jittered
//! uniformly in `[base/2, base]` so a thundering herd of retries decorrelates.
//! Jitter is drawn from a seeded [`SplitMix64`] stream, so tests that fix
//! the seed observe identical schedules run to run.

pub use doduo_served::chaos::SplitMix64;
use std::time::Duration;

/// One exponential-backoff schedule. Construct per failure episode (or
/// call [`Backoff::reset`] after a success).
#[derive(Debug)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
}

impl Backoff {
    /// A schedule starting at `base` and never exceeding `cap`.
    pub fn new(base: Duration, cap: Duration) -> Backoff {
        Backoff { base, cap, attempt: 0 }
    }

    /// The next delay: `min(base << attempt, cap)`, jittered down by up to
    /// half. Advances the attempt counter.
    pub fn next_delay(&mut self, rng: &mut SplitMix64) -> Duration {
        let exp = self
            .base
            .checked_mul(1u32.checked_shl(self.attempt).unwrap_or(u32::MAX))
            .unwrap_or(self.cap)
            .min(self.cap);
        self.attempt = self.attempt.saturating_add(1);
        // Uniform in [exp/2, exp]: never zero, never past the cap.
        exp / 2 + exp.mul_f64(0.5 * rng.next_f64())
    }

    /// Consecutive failures so far (delays handed out).
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Starts the schedule over after a success.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_to_the_cap_and_stay_jittered() {
        let base = Duration::from_millis(20);
        let cap = Duration::from_millis(250);
        let mut b = Backoff::new(base, cap);
        let mut rng = SplitMix64::new(1);
        let mut prev_max = Duration::ZERO;
        for i in 0..10 {
            let d = b.next_delay(&mut rng);
            let exp = base.checked_mul(1 << i.min(20)).unwrap_or(cap).min(cap);
            assert!(d >= exp / 2, "attempt {i}: {d:?} below half of {exp:?}");
            assert!(d <= exp, "attempt {i}: {d:?} above {exp:?}");
            assert!(d <= cap);
            prev_max = prev_max.max(d);
        }
        assert!(prev_max > Duration::from_millis(125), "the schedule reached the cap region");
    }

    #[test]
    fn schedule_is_deterministic_for_a_seed() {
        let run = || {
            let mut b = Backoff::new(Duration::from_millis(10), Duration::from_secs(1));
            let mut rng = SplitMix64::new(42);
            (0..8).map(|_| b.next_delay(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reset_starts_over() {
        let mut b = Backoff::new(Duration::from_millis(100), Duration::from_secs(10));
        let mut rng = SplitMix64::new(0);
        let first = b.next_delay(&mut rng);
        let _ = b.next_delay(&mut rng);
        assert_eq!(b.attempts(), 2);
        b.reset();
        assert_eq!(b.attempts(), 0);
        let after = b.next_delay(&mut rng);
        // Both draws come from attempt 0, so both sit in [base/2, base].
        for d in [first, after] {
            assert!(d >= Duration::from_millis(50) && d <= Duration::from_millis(100));
        }
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow() {
        let mut b = Backoff::new(Duration::from_millis(20), Duration::from_millis(300));
        let mut rng = SplitMix64::new(3);
        for _ in 0..100 {
            let d = b.next_delay(&mut rng);
            assert!(d <= Duration::from_millis(300));
        }
    }
}
