//! Fault-tolerant replicated serving for the DODUO daemon.
//!
//! `doduo-balance` turns one `doduo-served` daemon into a shared-nothing
//! replica set behind a single address:
//!
//! * [`supervisor`] — spawns N replica children (same checkpoint, port 0,
//!   addresses discovered via `--port-file`), admits each only after its
//!   `/readyz` probe passes, restarts crashed ones under a rate-limited
//!   restart budget with exponential backoff, and escalates a replica that
//!   exhausts the budget to permanent failure.
//! * [`proxy`] — an HTTP/1.1 keep-alive front that forwards each request
//!   to a ready replica and fails over on connect errors, first-byte
//!   timeouts, and complete `5xx`s — but never once response bytes have
//!   flowed (mid-response failures abort with `502` after exactly one
//!   dispatch). Overload sheds with `503 + Retry-After`.
//! * [`backend`] — the balancer→replica connection and the
//!   before-/mid-response failure classification the retry policy rests on.
//! * [`backoff`] — capped exponential backoff with seeded jitter, shared by
//!   request retries and replica restarts.
//!
//! Because `/annotate` is deterministic and side-effect-free, failover is
//! invisible: a retried request yields the same bytes any healthy replica
//! would have produced, preserving the daemon's byte-identity contract
//! end to end.
//!
//! The binary doubles as the replica launcher: `doduo-balance replica
//! <args…>` runs the full `doduo-served` CLI in-process, so supervised
//! deployments (and tests) need only one executable.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod backoff;
pub mod proxy;
pub mod supervisor;

pub use backend::{Backend, BackendResponse, ForwardError};
pub use backoff::Backoff;
pub use proxy::{BalanceConfig, BalanceHandle, Balancer};
pub use supervisor::{Registry, ReplicaState, SupervisorConfig};
