//! `doduo-balance` — replicated serving front for `doduo-served`.
//!
//! Two entry modes:
//!
//! * `doduo-balance [options]` — spawn and supervise N replicas of the
//!   annotation daemon and balance client traffic across them.
//! * `doduo-balance replica <doduo-served args…>` — run the full
//!   `doduo-served` CLI in this process (the supervisor self-execs this to
//!   launch replicas, so a deployment needs only one binary).

use doduo_balance::{BalanceConfig, Balancer, SupervisorConfig};
use std::path::PathBuf;
use std::time::Duration;

struct Args {
    addr: String,
    replicas: usize,
    served_bin: Option<String>,
    backends: Vec<String>,
    pass_through: Vec<String>,
    per_replica_chaos: Vec<(usize, String)>,
    port_dir: Option<String>,
    port_file: Option<String>,
    max_inflight: usize,
    retry_rounds: u32,
    response_timeout_ms: u64,
    restart_budget: usize,
    restart_window_secs: u64,
    startup_deadline_secs: u64,
    seed: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: doduo-balance (--checkpoint FILE | --synthetic quick|full) [options]\n\
         \n\
         replica fleet:\n\
           --replicas N            replica processes to supervise (default 2)\n\
           --served-bin PATH       spawn PATH instead of self-exec'ing\n\
                                   `doduo-balance replica`\n\
           --backend HOST:PORT     front an externally managed daemon instead of\n\
                                   spawning children (repeatable; disables the\n\
                                   supervisor)\n\
           --chaos-replica I:SPEC  inject faults into replica I only, e.g.\n\
                                   0:crash_after=40,seed=7 (repeatable)\n\
           --port-dir DIR          directory for replica port files\n\
                                   (default: a fresh dir under the temp dir)\n\
           --restart-budget N      respawns allowed per window before a slot is\n\
                                   marked permanently failed (default 5)\n\
           --restart-window-secs S sliding budget window (default 30)\n\
           --startup-deadline-secs S  kill a child not ready in S s (default 120)\n\
         \n\
         balancing:\n\
           --addr HOST:PORT        client-facing bind address (default\n\
                                   127.0.0.1:8878; port 0 = ephemeral)\n\
           --max-inflight N        shed with 503 + Retry-After beyond N\n\
                                   concurrently proxied requests (default 256)\n\
           --retry-rounds N        failover passes over the ready set (default 3)\n\
           --port-file FILE        write the bound client-facing address to FILE\n\
           --response-timeout-ms T per-read replica timeout; a first-byte timeout\n\
                                   fails over (default 30000)\n\
           --seed N                seed for retry/restart jitter (default 0)\n\
         \n\
         Every unrecognized flag (and its value) is passed through to the\n\
         replicas verbatim: --checkpoint, --synthetic, --workers, --threads,\n\
         --quant, --max-batch, ... — see `doduo-balance replica --help`.\n\
         \n\
         doduo-balance replica <args…>   run the doduo-served CLI in-process"
    );
    std::process::exit(2)
}

/// Flags forwarded to replicas that take a value (so pass-through parsing
/// knows to consume the next token too).
const PASS_THROUGH_WITH_VALUE: &[&str] = &[
    "--checkpoint",
    "--synthetic",
    "--seed-world",
    "--save-checkpoint",
    "--quant",
    "--max-batch",
    "--max-batch-tokens",
    "--max-delay-ms",
    "--threads",
    "--workers",
    "--topology",
    "--keep-alive",
];

fn parse_args(argv: &[String]) -> Args {
    let mut args = Args {
        addr: "127.0.0.1:8878".into(),
        replicas: 2,
        served_bin: None,
        backends: Vec::new(),
        pass_through: Vec::new(),
        per_replica_chaos: Vec::new(),
        port_dir: None,
        port_file: None,
        max_inflight: 256,
        retry_rounds: 3,
        response_timeout_ms: 30_000,
        restart_budget: 5,
        restart_window_secs: 30,
        startup_deadline_secs: 120,
        seed: 0,
    };
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => args.addr = value(&mut i),
            "--replicas" => args.replicas = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--served-bin" => args.served_bin = Some(value(&mut i)),
            "--backend" => args.backends.push(value(&mut i)),
            "--chaos-replica" => {
                let v = value(&mut i);
                let Some((idx, spec)) = v.split_once(':') else { usage() };
                let idx: usize = idx.parse().unwrap_or_else(|_| usage());
                args.per_replica_chaos.push((idx, spec.to_string()));
            }
            "--port-dir" => args.port_dir = Some(value(&mut i)),
            "--port-file" => args.port_file = Some(value(&mut i)),
            "--max-inflight" => {
                args.max_inflight = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--retry-rounds" => {
                args.retry_rounds = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--response-timeout-ms" => {
                args.response_timeout_ms = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--restart-budget" => {
                args.restart_budget = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--restart-window-secs" => {
                args.restart_window_secs = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--startup-deadline-secs" => {
                args.startup_deadline_secs = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--seed" => args.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            flag if PASS_THROUGH_WITH_VALUE.contains(&flag) => {
                args.pass_through.push(flag.to_string());
                // `--seed` is the balancer's jitter seed; replicas get the
                // synthetic-world seed via `--seed-world`.
                if flag == "--seed-world" {
                    args.pass_through.pop();
                    args.pass_through.push("--seed".into());
                }
                args.pass_through.push(value(&mut i));
            }
            other => {
                eprintln!("unknown argument {other}");
                usage()
            }
        }
        i += 1;
    }
    if args.backends.is_empty()
        && !args.pass_through.iter().any(|f| f == "--checkpoint" || f == "--synthetic")
    {
        eprintln!("a model source (--checkpoint / --synthetic) is required to spawn replicas");
        usage()
    }
    if args.replicas == 0 && args.backends.is_empty() {
        eprintln!("--replicas must be at least 1");
        usage()
    }
    args
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    // Hidden replica mode: run the daemon CLI in-process and exit with its
    // code. Everything after `replica` is a doduo-served flag.
    if argv.first().map(String::as_str) == Some("replica") {
        std::process::exit(doduo_served::cli::run(&argv[1..]));
    }
    let args = parse_args(&argv);

    let supervisor = if args.backends.is_empty() {
        let (program, prefix_args) = match &args.served_bin {
            Some(bin) => (PathBuf::from(bin), Vec::new()),
            None => {
                let me = std::env::current_exe().unwrap_or_else(|e| {
                    eprintln!("[balance] cannot locate own executable: {e}");
                    std::process::exit(1)
                });
                (me, vec!["replica".to_string()])
            }
        };
        let port_dir = match &args.port_dir {
            Some(d) => PathBuf::from(d),
            None => std::env::temp_dir().join(format!("doduo-balance-{}", std::process::id())),
        };
        if let Err(e) = std::fs::create_dir_all(&port_dir) {
            eprintln!("[balance] cannot create port dir {}: {e}", port_dir.display());
            std::process::exit(1);
        }
        let mut per_replica_args: Vec<Vec<String>> = vec![Vec::new(); args.replicas];
        for (idx, spec) in &args.per_replica_chaos {
            if *idx >= args.replicas {
                eprintln!("[balance] --chaos-replica index {idx} out of range");
                std::process::exit(2);
            }
            per_replica_args[*idx].extend(["--chaos".to_string(), spec.clone()]);
        }
        Some(SupervisorConfig {
            prefix_args,
            common_args: args.pass_through.clone(),
            per_replica_args,
            port_dir,
            restart_budget: args.restart_budget,
            restart_window: Duration::from_secs(args.restart_window_secs),
            startup_deadline: Duration::from_secs(args.startup_deadline_secs),
            seed: args.seed,
            ..SupervisorConfig::new(program, args.replicas)
        })
    } else {
        None
    };

    let cfg = BalanceConfig {
        addr: args.addr.clone(),
        supervisor,
        static_backends: args.backends.clone(),
        max_inflight: args.max_inflight,
        retry_rounds: args.retry_rounds,
        response_timeout: Duration::from_millis(args.response_timeout_ms),
        seed: args.seed,
        ..BalanceConfig::default()
    };
    let balancer = match Balancer::bind(cfg) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("[balance] cannot bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    if let Some(path) = &args.port_file {
        // Write-then-rename so a polling harness never reads a torn
        // half-written address (same protocol as the replicas' port files).
        let tmp = format!("{path}.tmp");
        let write = std::fs::write(&tmp, format!("{}\n", balancer.addr()))
            .and_then(|()| std::fs::rename(&tmp, path));
        if let Err(e) = write {
            eprintln!("[balance] cannot write port file {path}: {e}");
            std::process::exit(1);
        }
    }
    eprintln!(
        "[balance] listening on {} ({}; max inflight {}; {} retry rounds)",
        balancer.addr(),
        if args.backends.is_empty() {
            format!("supervising {} replica(s)", args.replicas)
        } else {
            format!("{} static backend(s)", args.backends.len())
        },
        args.max_inflight,
        args.retry_rounds,
    );
    match balancer.run() {
        Ok(()) => eprintln!("[balance] shut down cleanly"),
        Err(e) => {
            eprintln!("[balance] fatal: {e}");
            std::process::exit(1);
        }
    }
}
