//! The balancer front: accepts client keep-alive connections, proxies each
//! request to a `Ready` replica, and retries *safely*.
//!
//! ## Retry semantics (the idempotency argument)
//!
//! `/annotate` is deterministic and side-effect-free: the same body yields
//! byte-identical responses on every healthy replica (the daemon's
//! byte-identity contract). Re-dispatching a request is therefore safe
//! **iff the client-visible response never started** — the failure classes
//! of [`crate::backend::ForwardError`]:
//!
//! * before-response failures (connect refused, write error, first-byte
//!   timeout or EOF) and *complete* `5xx` responses → retry on another
//!   replica, with capped exponential backoff + seeded jitter between
//!   rounds;
//! * mid-response failures → the answer started flowing; a retry could
//!   deliver a second (or torn) answer, so the balancer aborts with `502`
//!   after **exactly one dispatch**;
//! * complete `4xx` → the request itself is bad; forwarded as-is, no retry.
//!
//! ## Overload
//!
//! At `max_inflight` concurrently proxied requests the balancer sheds with
//! `503 + Retry-After` instead of queueing unboundedly — the same
//! backpressure discipline the replicas use for their annotation queues.
//! Queue depth bounded at every layer means overload degrades throughput,
//! never correctness.

use crate::backend::{Backend, BackendResponse, ForwardError};
use crate::backoff::{Backoff, SplitMix64};
use crate::supervisor::{supervise, Registry, ReplicaState, SupervisorConfig};
use doduo_served::canonical_path;
use doduo_served::http::{
    read_body, read_head, reason_for, write_continue, write_error, write_response,
    write_unavailable, Head, ReadError,
};
use std::collections::{HashMap, HashSet};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// `Retry-After` hint (seconds) on shed and no-replica 503s.
const RETRY_AFTER_SECS: u64 = 1;

/// Balancer configuration.
#[derive(Clone, Debug)]
pub struct BalanceConfig {
    /// Bind address for the client-facing listener (port 0 = ephemeral).
    pub addr: String,
    /// Spawn and supervise replica children (the normal mode).
    pub supervisor: Option<SupervisorConfig>,
    /// Front fixed, externally managed backends instead (tests; fronting
    /// daemons that are already running). Ignored when `supervisor` is set.
    pub static_backends: Vec<String>,
    /// Maximum concurrent client connections (503 + close beyond it).
    pub max_connections: usize,
    /// Maximum concurrently proxied requests before shedding with
    /// `503 + Retry-After`.
    pub max_inflight: usize,
    /// Full passes over the ready-replica set before giving up on a
    /// retryable request.
    pub retry_rounds: u32,
    /// Backend TCP connect timeout.
    pub connect_timeout: Duration,
    /// Backend read timeout — bounds each wait for response bytes, so a
    /// stalled replica turns into a retryable first-byte timeout.
    pub response_timeout: Duration,
    /// First between-rounds retry delay (doubles per round, jittered).
    pub retry_backoff_base: Duration,
    /// Ceiling on the between-rounds retry delay.
    pub retry_backoff_cap: Duration,
    /// Wall-clock bound on reading one client request once its first byte
    /// arrived (slow-loris guard, as in the replicas).
    pub request_deadline: Duration,
    /// Client-socket read timeout (idle keep-alive poll granularity).
    pub read_timeout: Duration,
    /// Honor HTTP keep-alive on client connections.
    pub keep_alive: bool,
    /// Seed for retry jitter.
    pub seed: u64,
}

impl Default for BalanceConfig {
    fn default() -> Self {
        BalanceConfig {
            addr: "127.0.0.1:8878".into(),
            supervisor: None,
            static_backends: Vec::new(),
            max_connections: 1024,
            max_inflight: 256,
            retry_rounds: 3,
            connect_timeout: Duration::from_secs(1),
            response_timeout: Duration::from_secs(30),
            retry_backoff_base: Duration::from_millis(25),
            retry_backoff_cap: Duration::from_millis(500),
            request_deadline: Duration::from_secs(10),
            read_timeout: Duration::from_millis(200),
            keep_alive: true,
            seed: 0,
        }
    }
}

/// Aggregate balancer counters (served at `GET /stats`).
#[derive(Debug, Default)]
pub struct BalanceStats {
    /// Requests answered with a replica's complete response (any status
    /// except retried 5xx).
    pub requests_ok: AtomicU64,
    /// Requests that could not be answered (mid-response aborts, retry
    /// exhaustion).
    pub requests_failed: AtomicU64,
    /// Requests shed at `max_inflight` with `503 + Retry-After`.
    pub sheds: AtomicU64,
    /// Dispatch attempts beyond each request's first.
    pub retries: AtomicU64,
    /// Requests aborted with 502 because response bytes began flowing.
    pub mid_response_aborts: AtomicU64,
    /// Client connections accepted.
    pub conns_accepted: AtomicU64,
    /// Client connections rejected at the connection cap.
    pub conns_rejected: AtomicU64,
    /// Fleet-wide model swaps committed (every ready replica accepted).
    pub model_swaps: AtomicU64,
    /// Model uploads rolled back because some replica rejected or died.
    pub model_swap_failures: AtomicU64,
    /// Restarted replicas caught up to the fleet's current model.
    pub model_catchups: AtomicU64,
}

struct Shared {
    shutdown: AtomicBool,
    connections: AtomicUsize,
    inflight: AtomicUsize,
    conn_seq: AtomicU64,
    registry: Registry,
    stats: BalanceStats,
    started: Instant,
    fatal: Mutex<Option<String>>,
    /// The last model blob every replica accepted — the rollback image for
    /// a failed fan-out and the catch-up image for restarted replicas.
    last_model: Mutex<Option<Vec<u8>>>,
    /// `(replica id, restart count)` pairs known to serve `last_model`
    /// (or the boot checkpoint when no upload happened yet). A restart
    /// changes the key, which is what re-triggers catch-up.
    converged: Mutex<HashSet<(usize, u64)>>,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    fn end_conn(&self) {
        self.connections.fetch_sub(1, Ordering::SeqCst);
    }

    fn stats_json(&self) -> String {
        let replicas: Vec<String> = self
            .registry
            .snapshot()
            .iter()
            .map(|r| {
                format!(
                    "{{\"id\":{},\"state\":\"{}\",\"addr\":{},\"pid\":{},\"restarts\":{}}}",
                    r.id,
                    r.state.as_str(),
                    match &r.addr {
                        Some(a) => format!("\"{a}\""),
                        None => "null".into(),
                    },
                    match r.pid {
                        Some(p) => p.to_string(),
                        None => "null".into(),
                    },
                    r.restarts,
                )
            })
            .collect();
        let s = &self.stats;
        format!(
            "{{\"uptime_secs\":{:.3},\"requests_ok\":{},\"requests_failed\":{},\"sheds\":{},\
             \"retries\":{},\"mid_response_aborts\":{},\"conns_accepted\":{},\
             \"conns_rejected\":{},\"model_swaps\":{},\"model_swap_failures\":{},\
             \"model_catchups\":{},\"restarts\":{},\"permanent_failures\":{},\"replicas\":[{}]}}\n",
            self.started.elapsed().as_secs_f64(),
            s.requests_ok.load(Ordering::Relaxed),
            s.requests_failed.load(Ordering::Relaxed),
            s.sheds.load(Ordering::Relaxed),
            s.retries.load(Ordering::Relaxed),
            s.mid_response_aborts.load(Ordering::Relaxed),
            s.conns_accepted.load(Ordering::Relaxed),
            s.conns_rejected.load(Ordering::Relaxed),
            s.model_swaps.load(Ordering::Relaxed),
            s.model_swap_failures.load(Ordering::Relaxed),
            s.model_catchups.load(Ordering::Relaxed),
            self.registry.total_restarts(),
            self.registry.permanent_failures(),
            replicas.join(","),
        )
    }
}

/// A clonable remote control for a running balancer.
#[derive(Clone)]
pub struct BalanceHandle {
    shared: Arc<Shared>,
}

impl BalanceHandle {
    /// Requests graceful shutdown; [`Balancer::run`] stops children, joins
    /// every thread, and returns.
    pub fn shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// True once shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down()
    }

    /// The balancer stats document (same JSON as `GET /stats`).
    pub fn stats_json(&self) -> String {
        self.shared.stats_json()
    }

    /// Ready replicas right now.
    pub fn ready_replicas(&self) -> usize {
        self.shared.registry.ready_order().len()
    }

    /// Total replica respawns so far.
    pub fn total_restarts(&self) -> u64 {
        self.shared.registry.total_restarts()
    }

    /// Replicas escalated to permanent failure.
    pub fn permanent_failures(&self) -> usize {
        self.shared.registry.permanent_failures()
    }
}

/// A bound (but not yet serving) balancer.
pub struct Balancer {
    listener: TcpListener,
    addr: SocketAddr,
    cfg: BalanceConfig,
    shared: Arc<Shared>,
}

impl Balancer {
    /// Binds the client-facing listener and builds the replica registry.
    pub fn bind(cfg: BalanceConfig) -> std::io::Result<Balancer> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let registry = match &cfg.supervisor {
            Some(sup) => Registry::supervised(sup),
            None => Registry::static_backends(&cfg.static_backends),
        };
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            conn_seq: AtomicU64::new(0),
            registry,
            stats: BalanceStats::default(),
            started: Instant::now(),
            fatal: Mutex::new(None),
            last_model: Mutex::new(None),
            converged: Mutex::new(HashSet::new()),
        });
        Ok(Balancer { listener, addr, cfg, shared })
    }

    /// The actually-bound client-facing address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A remote control usable from other threads.
    pub fn handle(&self) -> BalanceHandle {
        BalanceHandle { shared: Arc::clone(&self.shared) }
    }

    /// Serves until shutdown (or until every supervised replica has
    /// permanently failed, which is an error). All threads — the
    /// supervisor and one per client connection — are scoped inside, and
    /// supervised children are stopped before this returns.
    pub fn run(&self) -> Result<(), String> {
        self.listener.set_nonblocking(true).map_err(|e| format!("listener: {e}"))?;
        let shared = &self.shared;
        let cfg = &self.cfg;
        std::thread::scope(|scope| {
            if let Some(sup) = &cfg.supervisor {
                scope.spawn(move || supervise(&shared.registry, sup, &shared.shutdown));
                // Catch-up: a replica restarted after a fleet-wide swap
                // boots on its original checkpoint; re-push the accepted
                // model before mixed-version answers can linger.
                scope.spawn(move || catchup_loop(shared, cfg));
            }
            while !shared.shutting_down() {
                if cfg.supervisor.is_some() && shared.registry.all_failed() {
                    *shared.fatal.lock().expect("fatal lock") =
                        Some("every replica permanently failed".into());
                    shared.request_shutdown();
                    break;
                }
                if let Some(stream) = self.admit() {
                    scope.spawn(move || {
                        conn_loop(stream, shared, cfg);
                        shared.end_conn();
                    });
                }
            }
        });
        match self.shared.fatal.lock().expect("fatal lock").take() {
            Some(msg) => Err(msg),
            None => Ok(()),
        }
    }

    fn admit(&self) -> Option<TcpStream> {
        let shared = &self.shared;
        match self.listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(false).is_err()
                    || stream.set_read_timeout(Some(self.cfg.read_timeout)).is_err()
                    || stream.set_write_timeout(Some(Duration::from_secs(30))).is_err()
                    || stream.set_nodelay(true).is_err()
                {
                    return None;
                }
                if shared.connections.load(Ordering::SeqCst) >= self.cfg.max_connections {
                    shared.stats.conns_rejected.fetch_add(1, Ordering::Relaxed);
                    let mut stream = stream;
                    let _ = write_unavailable(
                        &mut stream,
                        "overloaded",
                        "too many connections",
                        false,
                        RETRY_AFTER_SECS,
                    );
                    return None;
                }
                shared.connections.fetch_add(1, Ordering::SeqCst);
                shared.stats.conns_accepted.fetch_add(1, Ordering::Relaxed);
                Some(stream)
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
                None
            }
            Err(e) => {
                eprintln!("[balance] accept error: {e}");
                std::thread::sleep(Duration::from_millis(50));
                None
            }
        }
    }
}

/// Decrements the inflight gauge on every exit path.
struct InflightGuard<'a>(&'a AtomicUsize);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Serves one client connection: local endpoints answered in place,
/// everything else proxied with failover. Pooled backend connections are
/// per-client-connection (no cross-client sharing, no locking).
fn conn_loop(stream: TcpStream, shared: &Shared, cfg: &BalanceConfig) {
    let mut stream = stream;
    let Ok(clone) = stream.try_clone() else { return };
    let mut reader = BufReader::new(clone);
    let mut backends: HashMap<usize, Backend> = HashMap::new();
    let conn_id = shared.conn_seq.fetch_add(1, Ordering::Relaxed);
    let mut rng = SplitMix64::new(cfg.seed.wrapping_add(conn_id));
    loop {
        if shared.shutting_down() {
            return;
        }
        let deadline = Instant::now() + cfg.request_deadline;
        let head = match read_head(&mut reader, deadline) {
            Ok(h) => h,
            Err(ReadError::TimedOut) => continue, // idle keep-alive
            Err(ReadError::Eof) => return,
            Err(ReadError::Bad(msg)) => {
                let _ = write_error(&mut stream, 400, "Bad Request", &msg, false);
                return;
            }
            Err(ReadError::TooLarge(msg)) => {
                let _ = write_error(&mut stream, 413, "Payload Too Large", &msg, false);
                return;
            }
            Err(ReadError::TooSlow) => {
                let _ = write_error(&mut stream, 408, "Request Timeout", "request too slow", false);
                return;
            }
            Err(ReadError::Io(_)) => return,
        };
        let keep_alive = head.keep_alive && cfg.keep_alive && !shared.shutting_down();

        // Streaming is deliberately not proxied: a chunked response has no
        // single commit point, so the balancer's retry semantics cannot
        // apply. Clients stream against a replica directly.
        if head.method == "POST" && canonical_path(&head.path) == "/annotate_stream" {
            let _ = write_error(
                &mut stream,
                501,
                "Not Implemented",
                "streaming is not proxied; connect to a replica directly",
                false,
            );
            return;
        }

        if head.expect_continue && write_continue(&mut stream).is_err() {
            return;
        }
        let body = match read_body(&mut reader, head.framing, deadline) {
            Ok(b) => b,
            Err(ReadError::TooLarge(msg)) => {
                let _ = write_error(&mut stream, 413, "Payload Too Large", &msg, false);
                return;
            }
            Err(ReadError::Bad(msg)) => {
                let _ = write_error(&mut stream, 400, "Bad Request", &msg, false);
                return;
            }
            Err(ReadError::TooSlow) => {
                let _ = write_error(&mut stream, 408, "Request Timeout", "request too slow", false);
                return;
            }
            Err(_) => return,
        };

        // Local endpoints answer under `/v1` and the legacy unprefixed
        // aliases alike, mirroring the replicas.
        let ok = match (head.method.as_str(), canonical_path(&head.path)) {
            // Balancer liveness: 200 while the front process serves at all.
            ("GET", "/healthz") => {
                let ready = shared.registry.ready_order().len();
                let body = format!(
                    "{{\"status\":\"ok\",\"ready_replicas\":{ready},\"uptime_secs\":{:.3}}}\n",
                    shared.started.elapsed().as_secs_f64()
                );
                write_response(&mut stream, 200, "OK", "application/json", &body, keep_alive)
            }
            // Balancer readiness: can it actually route traffic somewhere?
            ("GET", "/readyz") => {
                if shared.registry.ready_order().is_empty() {
                    write_unavailable(
                        &mut stream,
                        "no_ready_replica",
                        "no ready replica",
                        keep_alive,
                        RETRY_AFTER_SECS,
                    )
                } else {
                    write_response(
                        &mut stream,
                        200,
                        "OK",
                        "application/json",
                        "{\"status\":\"ready\"}\n",
                        keep_alive,
                    )
                }
            }
            ("GET", "/stats") => {
                let body = shared.stats_json();
                write_response(&mut stream, 200, "OK", "application/json", &body, keep_alive)
            }
            // Model uploads are a *fleet* operation, not a proxied request:
            // all ready replicas must accept the new bundle or none keep it.
            ("POST", "/model") => fan_out_model(&mut stream, &body, shared, cfg, keep_alive),
            ("POST", "/shutdown") => {
                let _ = write_response(
                    &mut stream,
                    200,
                    "OK",
                    "application/json",
                    "{\"status\":\"shutting down\"}\n",
                    false,
                );
                shared.request_shutdown();
                return;
            }
            _ => proxy_request(
                &mut stream,
                &head,
                &body,
                &mut backends,
                shared,
                cfg,
                &mut rng,
                keep_alive,
            ),
        };
        if ok.is_err() || !keep_alive {
            return;
        }
    }
}

/// Proxies one request with per-request failover (see module docs for the
/// exact retry rules).
#[allow(clippy::too_many_arguments)]
fn proxy_request(
    stream: &mut TcpStream,
    head: &Head,
    body: &[u8],
    backends: &mut HashMap<usize, Backend>,
    shared: &Shared,
    cfg: &BalanceConfig,
    rng: &mut SplitMix64,
    keep_alive: bool,
) -> std::io::Result<()> {
    if shared.inflight.fetch_add(1, Ordering::SeqCst) >= cfg.max_inflight {
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
        shared.stats.sheds.fetch_add(1, Ordering::Relaxed);
        return write_unavailable(
            stream,
            "overloaded",
            "balancer overloaded",
            keep_alive,
            RETRY_AFTER_SECS,
        );
    }
    let _guard = InflightGuard(&shared.inflight);

    let path = if head.query.is_empty() {
        head.path.clone()
    } else {
        format!("{}?{}", head.path, head.query)
    };
    let mut backoff = Backoff::new(cfg.retry_backoff_base, cfg.retry_backoff_cap);
    let mut attempts = 0u64;
    let mut last_5xx: Option<BackendResponse> = None;
    for round in 0..cfg.retry_rounds.max(1) {
        if round > 0 {
            std::thread::sleep(backoff.next_delay(rng));
        }
        for (id, addr) in shared.registry.ready_order() {
            if attempts > 0 {
                shared.stats.retries.fetch_add(1, Ordering::Relaxed);
            }
            attempts += 1;
            // Reuse this connection's pooled link to the replica, or dial.
            // A zero-timeout readiness probe weeds out links whose replica
            // restarted while they were parked — those would otherwise
            // burn a retry attempt as a before-response failure.
            let pooled = backends.remove(&id).filter(|b| !b.is_stale());
            let mut be = match pooled {
                Some(b) => b,
                None => match Backend::connect(&addr, cfg.connect_timeout, cfg.response_timeout) {
                    Ok(b) => b,
                    Err(_) => continue,
                },
            };
            match be.forward(&head.method, &path, body) {
                Ok(resp) if resp.status >= 500 => {
                    // A complete 5xx: the replica answered "not me, not
                    // now" — safe to try elsewhere, keep it as the answer
                    // of last resort.
                    if resp.keep_alive {
                        backends.insert(id, be);
                    }
                    last_5xx = Some(resp);
                }
                Ok(resp) => {
                    if resp.keep_alive {
                        backends.insert(id, be);
                    }
                    shared.stats.requests_ok.fetch_add(1, Ordering::Relaxed);
                    return relay(stream, &resp, keep_alive);
                }
                Err(ForwardError::BeforeResponse(_)) => {
                    // Zero response bytes: the link is dead but the
                    // request is untainted. Drop the link, try the next
                    // replica.
                }
                Err(ForwardError::MidResponse(msg)) => {
                    shared.stats.mid_response_aborts.fetch_add(1, Ordering::Relaxed);
                    shared.stats.requests_failed.fetch_add(1, Ordering::Relaxed);
                    return write_error(
                        stream,
                        502,
                        "Bad Gateway",
                        &format!("replica failed mid-response ({msg}); not retried"),
                        keep_alive,
                    );
                }
            }
        }
    }
    shared.stats.requests_failed.fetch_add(1, Ordering::Relaxed);
    match last_5xx {
        // Every replica answered 5xx: forward the last one honestly.
        Some(resp) => relay(stream, &resp, keep_alive),
        None => write_unavailable(
            stream,
            "no_healthy_replica",
            "no healthy replica",
            keep_alive,
            RETRY_AFTER_SECS,
        ),
    }
}

/// Writes a replica's complete response back to the client, preserving
/// status, content type, body bytes, and the `Retry-After` /
/// `x-model-version` hints.
fn relay(stream: &mut TcpStream, resp: &BackendResponse, keep_alive: bool) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        resp.status,
        reason_for(resp.status),
        resp.content_type,
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    if let Some(ra) = resp.retry_after {
        head.push_str(&format!("retry-after: {ra}\r\n"));
    }
    if let Some(mv) = &resp.model_version {
        head.push_str(&format!("x-model-version: {mv}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

// ------------------------------------------------------------- model swap

/// One fresh-dialed model upload to a replica (no pooling: uploads are
/// rare and large, and a stale pooled link must not burn the attempt).
fn upload_model(addr: &str, blob: &[u8], cfg: &BalanceConfig) -> Result<BackendResponse, String> {
    let mut be = Backend::connect(addr, cfg.connect_timeout, cfg.response_timeout)
        .map_err(|e| format!("connect: {e}"))?;
    be.forward("POST", "/v1/model", blob).map_err(|e| format!("{e:?}"))
}

/// The per-replica outcome of one fan-out, rendered into the report JSON.
struct SwapOutcome {
    id: usize,
    outcome: String,
}

/// Fans a model upload to every ready replica with all-or-nothing
/// semantics: the upload stops at the first failure, every replica that
/// already accepted is rolled back to the retained previous blob — or
/// stopped outright when there is nothing to roll back to (a stopped
/// replica is restarted by the supervisor on its boot checkpoint; better
/// down than serving a model the fleet rejected) — and the client gets a
/// per-replica report either way.
fn fan_out_model(
    stream: &mut TcpStream,
    blob: &[u8],
    shared: &Shared,
    cfg: &BalanceConfig,
    keep_alive: bool,
) -> std::io::Result<()> {
    if blob.is_empty() {
        return write_error(stream, 400, "Bad Request", "empty model upload", keep_alive);
    }
    let mut ready = shared.registry.ready_order();
    ready.sort_by_key(|(id, _)| *id);
    if ready.is_empty() {
        return write_unavailable(
            stream,
            "no_ready_replica",
            "no ready replica to install the model on",
            keep_alive,
            RETRY_AFTER_SECS,
        );
    }

    let mut outcomes: Vec<SwapOutcome> = Vec::new();
    let mut accepted: Vec<(usize, String)> = Vec::new();
    let mut version: Option<String> = None;
    let mut failure: Option<String> = None;
    for (id, addr) in &ready {
        match upload_model(addr, blob, cfg) {
            Ok(resp) if resp.status == 200 => {
                version = version.or(resp.model_version);
                accepted.push((*id, addr.clone()));
                outcomes.push(SwapOutcome { id: *id, outcome: "swapped".into() });
            }
            Ok(resp) => {
                failure = Some(format!("replica {id} rejected the bundle (HTTP {})", resp.status));
                outcomes
                    .push(SwapOutcome { id: *id, outcome: format!("rejected ({})", resp.status) });
            }
            Err(e) => {
                failure = Some(format!("replica {id} unreachable mid-upload ({e})"));
                outcomes.push(SwapOutcome { id: *id, outcome: "unreachable".into() });
            }
        }
        if failure.is_some() {
            break; // replicas after the failure are never touched
        }
    }

    let Some(reason) = failure else {
        // Commit: retain the blob for rollback/catch-up and mark every
        // accepter converged at its current restart generation.
        *shared.last_model.lock().expect("model lock") = Some(blob.to_vec());
        let mut converged = shared.converged.lock().expect("converged lock");
        converged.clear();
        for r in shared.registry.snapshot() {
            if accepted.iter().any(|(id, _)| *id == r.id) {
                converged.insert((r.id, r.restarts));
            }
        }
        drop(converged);
        shared.stats.model_swaps.fetch_add(1, Ordering::Relaxed);
        let version = version.unwrap_or_default();
        eprintln!("[balance] model swap committed on {} replica(s): {version}", accepted.len());
        let body = format!(
            "{{\"status\":\"swapped\",\"model_version\":\"{version}\",\"replicas\":[{}]}}\n",
            render_outcomes(&outcomes),
        );
        return write_response(stream, 200, "OK", "application/json", &body, keep_alive);
    };

    // Roll back every accepter so no serving replica keeps the rejected
    // model. Mark untouched replicas explicitly in the report.
    shared.stats.model_swap_failures.fetch_add(1, Ordering::Relaxed);
    let rollback = shared.last_model.lock().expect("model lock").clone();
    for o in &mut outcomes {
        let Some((_, addr)) = accepted.iter().find(|(id, _)| *id == o.id) else { continue };
        o.outcome = match &rollback {
            Some(prev) => match upload_model(addr, prev, cfg) {
                Ok(r) if r.status == 200 => "rolled_back".into(),
                _ => stop_replica(addr),
            },
            None => stop_replica(addr),
        };
    }
    for (id, _) in &ready {
        if !outcomes.iter().any(|o| o.id == *id) {
            outcomes.push(SwapOutcome { id: *id, outcome: "untouched".into() });
        }
    }
    eprintln!("[balance] model swap rolled back: {reason}");
    let body = format!(
        "{{\"error\":{{\"code\":\"swap_rejected\",\"message\":\"{reason}\"}},\"replicas\":[{}]}}\n",
        render_outcomes(&outcomes),
    );
    write_response(stream, 502, "Bad Gateway", "application/json", &body, keep_alive)
}

/// Last-resort rollback: stop a replica that accepted a model the fleet
/// rejected (the supervisor respawns it on the boot checkpoint).
fn stop_replica(addr: &str) -> String {
    match Backend::connect(addr, Duration::from_millis(500), Duration::from_millis(500)) {
        Ok(mut be) => match be.forward("POST", "/v1/shutdown", b"") {
            Ok(_) | Err(ForwardError::MidResponse(_)) => "stopped".into(),
            Err(ForwardError::BeforeResponse(_)) => "inconsistent".into(),
        },
        Err(_) => "inconsistent".into(),
    }
}

fn render_outcomes(outcomes: &[SwapOutcome]) -> String {
    outcomes
        .iter()
        .map(|o| format!("{{\"id\":{},\"outcome\":\"{}\"}}", o.id, o.outcome))
        .collect::<Vec<_>>()
        .join(",")
}

/// Re-pushes the committed model to replicas whose `(id, restarts)` key is
/// new — i.e. freshly (re)started children serving their boot checkpoint
/// while the fleet already swapped. Runs only in supervised mode.
fn catchup_loop(shared: &Shared, cfg: &BalanceConfig) {
    while !shared.shutting_down() {
        std::thread::sleep(Duration::from_millis(100));
        let blob = shared.last_model.lock().expect("model lock").clone();
        for r in shared.registry.snapshot() {
            if r.state != ReplicaState::Ready {
                continue;
            }
            let Some(addr) = r.addr else { continue };
            let key = (r.id, r.restarts);
            if shared.converged.lock().expect("converged lock").contains(&key) {
                continue;
            }
            let Some(blob) = &blob else {
                // No fleet-wide upload yet: the boot checkpoint IS current.
                shared.converged.lock().expect("converged lock").insert(key);
                continue;
            };
            match upload_model(&addr, blob, cfg) {
                Ok(resp) if resp.status == 200 => {
                    shared.converged.lock().expect("converged lock").insert(key);
                    shared.stats.model_catchups.fetch_add(1, Ordering::Relaxed);
                    eprintln!(
                        "[balance] replica {} caught up to the fleet model ({})",
                        r.id,
                        resp.model_version.as_deref().unwrap_or("?"),
                    );
                }
                _ => {} // retry next tick (replica may still be warming up)
            }
        }
    }
}
