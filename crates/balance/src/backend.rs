//! One keep-alive connection from the balancer to a replica, with the
//! failure classification the whole retry policy hangs on.
//!
//! [`Backend::forward`] distinguishes two failure classes:
//!
//! * **Before-response** — connect refused, write failed, timeout or EOF
//!   before the *first byte* of the status line. The replica cannot have
//!   committed to an answer the client saw, and `/annotate` is
//!   deterministic and side-effect-free, so the request is safe to retry
//!   on another replica.
//! * **Mid-response** — any error after at least one response byte was
//!   read. The answer started flowing; retrying could double-deliver a
//!   response or hand the client bytes from two different attempts. The
//!   balancer converts this to a `502` and never re-dispatches.
//!
//! A complete response — any status — is not a transport failure; the
//! *proxy* decides whether a complete `5xx` is worth retrying elsewhere.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::time::Duration;

/// Why forwarding to a replica failed.
#[derive(Debug)]
pub enum ForwardError {
    /// The replica never produced a response byte — safe to retry.
    BeforeResponse(String),
    /// Response bytes began flowing and then the connection died — the
    /// request must NOT be retried.
    MidResponse(String),
}

/// One complete response read back from a replica.
#[derive(Debug)]
pub struct BackendResponse {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value (defaults to `application/json`).
    pub content_type: String,
    /// `Retry-After` seconds, when the replica sent one (503 backpressure).
    pub retry_after: Option<u64>,
    /// `x-model-version` header, when the replica sent one (annotate and
    /// model-swap responses carry the engine version that produced them).
    pub model_version: Option<String>,
    /// The full body.
    pub body: Vec<u8>,
    /// Whether the replica will keep this connection open.
    pub keep_alive: bool,
}

/// A pooled balancer→replica connection.
#[derive(Debug)]
pub struct Backend {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Backend {
    /// Connects with a bounded connect timeout and a per-read timeout
    /// (which bounds each wait for response bytes, i.e. detects a stalled
    /// replica).
    pub fn connect(
        addr: &str,
        connect_timeout: Duration,
        read_timeout: Duration,
    ) -> std::io::Result<Backend> {
        let sock: SocketAddr = addr
            .parse()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, format!("{e}")))?;
        let stream = TcpStream::connect_timeout(&sock, connect_timeout)?;
        stream.set_read_timeout(Some(read_timeout))?;
        stream.set_write_timeout(Some(connect_timeout))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Backend { stream, reader })
    }

    /// Whether a pooled idle link has gone stale. A parked keep-alive
    /// connection must have *nothing* to read: a zero-timeout readiness
    /// probe that reports readable means either EOF (the replica
    /// restarted) or stray bytes — in both cases forwarding on it would
    /// burn a retry attempt, so the pool drops it and dials fresh. This is
    /// a pure readiness probe (no bytes consumed) via the same shim the
    /// daemon's reactor runs on.
    pub fn is_stale(&self) -> bool {
        if !self.reader.buffer().is_empty() {
            return true;
        }
        match epoll::poll_one(self.stream.as_raw_fd(), epoll::EPOLLIN, Some(Duration::ZERO)) {
            Ok(revents) => revents != 0,
            Err(_) => true,
        }
    }

    /// Sends one request and reads the full response, classifying any
    /// failure as before- or mid-response (see module docs).
    pub fn forward(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> Result<BackendResponse, ForwardError> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: localhost\r\nconnection: keep-alive\r\n\
             content-length: {}\r\n\r\n",
            body.len()
        );
        // A write failure means the replica died while receiving the
        // request; it cannot have answered, so this stays retryable.
        self.stream
            .write_all(head.as_bytes())
            .and_then(|()| self.stream.write_all(body))
            .and_then(|()| self.stream.flush())
            .map_err(|e| ForwardError::BeforeResponse(format!("write: {e}")))?;

        // The first-byte probe is the before/mid boundary: an error or EOF
        // here is retryable, anything after it is not.
        let started = loop {
            match self.reader.fill_buf() {
                Ok([]) => {
                    return Err(ForwardError::BeforeResponse("closed before response".into()))
                }
                Ok(_) => break true,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(ForwardError::BeforeResponse("timed out awaiting response".into()))
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(ForwardError::BeforeResponse(format!("read: {e}"))),
            }
        };
        debug_assert!(started);
        let mid = |e: std::io::Error| ForwardError::MidResponse(format!("{e}"));

        let mut line = String::new();
        self.reader.read_line(&mut line).map_err(mid)?;
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ForwardError::MidResponse(format!("bad status line: {line:?}")))?;

        let mut content_length = 0usize;
        let mut content_type = String::from("application/json");
        let mut retry_after = None;
        let mut model_version = None;
        let mut keep_alive = true;
        loop {
            line.clear();
            let n = self.reader.read_line(&mut line).map_err(mid)?;
            if n == 0 {
                return Err(ForwardError::MidResponse("closed mid-headers".into()));
            }
            let t = line.trim_end();
            if t.is_empty() {
                break;
            }
            if let Some((name, value)) = t.split_once(':') {
                let value = value.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.parse().unwrap_or(0);
                } else if name.eq_ignore_ascii_case("content-type") {
                    content_type = value.to_string();
                } else if name.eq_ignore_ascii_case("retry-after") {
                    retry_after = value.parse().ok();
                } else if name.eq_ignore_ascii_case("x-model-version") {
                    model_version = Some(value.to_string());
                } else if name.eq_ignore_ascii_case("connection")
                    && value.eq_ignore_ascii_case("close")
                {
                    keep_alive = false;
                } else if name.eq_ignore_ascii_case("transfer-encoding") {
                    // Replicas only chunk `/annotate_stream`, which the
                    // balancer never proxies; treat it as a torn response.
                    return Err(ForwardError::MidResponse("unexpected chunked response".into()));
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader
            .read_exact(&mut body)
            .map_err(|e| ForwardError::MidResponse(format!("body: {e}")))?;
        Ok(BackendResponse { status, content_type, retry_after, model_version, body, keep_alive })
    }
}
