//! The replica supervisor: spawns N `doduo-served` child processes,
//! discovers their ephemeral ports, probes readiness, restarts crashes
//! under a rate-limited budget, and escalates permanent failures.
//!
//! ## Lifecycle of one replica slot
//!
//! ```text
//! Starting ──(port file + /readyz 200)──▶ Ready
//!    │  ▲                                  │
//!    │  └──(backoff elapsed: respawn)──┐   │ child exits, or /readyz
//!    │                                 │   │ fails repeatedly
//!    └──(startup deadline: kill)──▶  Down ◀┘
//!                                      │
//!                  (restart budget exhausted within the window)
//!                                      ▼
//!                                   Failed   (permanent; escalated)
//! ```
//!
//! Restarts back off exponentially (seeded jitter, see
//! [`crate::backoff::Backoff`]) and are budgeted: more than
//! `restart_budget` respawns inside `restart_window` marks the slot
//! [`ReplicaState::Failed`] — a crash loop is a deploy problem, not
//! something to hide behind infinite restarts. A restarted replica is
//! **re-admitted only after `/readyz` returns 200**, so the balancer never
//! routes to a process that is still loading its checkpoint.

use crate::backoff::{Backoff, SplitMix64};
use doduo_served::http::Client;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How the supervisor launches and polices replica children.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// The binary to spawn (usually `doduo-balance` itself, see
    /// `prefix_args`, or a `doduo-served` binary directly).
    pub program: PathBuf,
    /// Arguments prepended before the daemon flags — `["replica"]` when
    /// `program` is `doduo-balance` (self-exec), empty for `doduo-served`.
    pub prefix_args: Vec<String>,
    /// Daemon flags shared by every replica (model source, workers, ...).
    /// `--addr 127.0.0.1:0` and `--port-file` are appended automatically.
    pub common_args: Vec<String>,
    /// Extra flags per replica index (e.g. a `--chaos` spec for replica 0);
    /// may be shorter than the replica count.
    pub per_replica_args: Vec<Vec<String>>,
    /// Number of replica children.
    pub replicas: usize,
    /// Directory for the per-replica port files.
    pub port_dir: PathBuf,
    /// Supervisor tick interval (child liveness + readiness probing).
    pub probe_interval: Duration,
    /// Read timeout for one `/readyz` probe.
    pub probe_timeout: Duration,
    /// Probe `Ready` replicas only every Nth tick (`Starting` ones are
    /// probed every tick so re-admission is prompt).
    pub ready_probe_every: u32,
    /// Kill a child that has not become ready within this deadline.
    pub startup_deadline: Duration,
    /// First respawn delay after a crash (doubles per consecutive crash).
    pub restart_backoff_base: Duration,
    /// Ceiling on the respawn delay.
    pub restart_backoff_cap: Duration,
    /// Respawns allowed within `restart_window` before the slot is marked
    /// permanently [`ReplicaState::Failed`].
    pub restart_budget: usize,
    /// The sliding window the budget is measured over.
    pub restart_window: Duration,
    /// Seed for restart-backoff jitter.
    pub seed: u64,
}

impl SupervisorConfig {
    /// A config with production-shaped defaults for `replicas` children of
    /// `program`.
    pub fn new(program: PathBuf, replicas: usize) -> SupervisorConfig {
        SupervisorConfig {
            program,
            prefix_args: Vec::new(),
            common_args: Vec::new(),
            per_replica_args: Vec::new(),
            replicas,
            port_dir: std::env::temp_dir(),
            probe_interval: Duration::from_millis(100),
            probe_timeout: Duration::from_millis(500),
            ready_probe_every: 5,
            startup_deadline: Duration::from_secs(120),
            restart_backoff_base: Duration::from_millis(100),
            restart_backoff_cap: Duration::from_secs(2),
            restart_budget: 5,
            restart_window: Duration::from_secs(30),
            seed: 0,
        }
    }
}

/// Where a replica slot is in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicaState {
    /// Child spawned; waiting for its port file and a passing `/readyz`.
    Starting,
    /// Admitted for traffic.
    Ready,
    /// Child dead or unresponsive; a respawn is scheduled.
    Down,
    /// Restart budget exhausted — permanently out of rotation.
    Failed,
}

impl ReplicaState {
    /// Lower-case name for logs and `/stats`.
    pub fn as_str(self) -> &'static str {
        match self {
            ReplicaState::Starting => "starting",
            ReplicaState::Ready => "ready",
            ReplicaState::Down => "down",
            ReplicaState::Failed => "failed",
        }
    }
}

/// A point-in-time public view of one slot (for `/stats`).
#[derive(Clone, Debug)]
pub struct ReplicaInfo {
    /// Slot index.
    pub id: usize,
    /// Lifecycle state.
    pub state: ReplicaState,
    /// Bound address once discovered.
    pub addr: Option<String>,
    /// Child PID while one is running.
    pub pid: Option<u32>,
    /// Times this slot's child has been respawned beyond its first spawn.
    pub restarts: u64,
}

struct Slot {
    id: usize,
    /// `None` for static (externally managed) backends.
    child: Option<Child>,
    addr: Option<String>,
    state: ReplicaState,
    /// Successful `spawn_child` calls so far.
    spawns: u64,
    /// Spawns beyond the first (what `/stats` reports).
    restarts: u64,
    recent_respawns: VecDeque<Instant>,
    backoff: Backoff,
    respawn_at: Instant,
    started_at: Instant,
    failed_probes: u32,
    port_file: PathBuf,
    /// Static backend: never spawned, probed, or restarted by us.
    external: bool,
}

/// The shared replica table: the supervisor mutates it, the proxy reads
/// round-robin routing snapshots from it.
pub struct Registry {
    slots: Mutex<Vec<Slot>>,
    rr: AtomicUsize,
    rng: Mutex<SplitMix64>,
    /// Slots escalated to [`ReplicaState::Failed`].
    permanent_failures: AtomicUsize,
}

impl Registry {
    /// A registry of `cfg.replicas` supervised slots (children are spawned
    /// by [`supervise`], not here).
    pub fn supervised(cfg: &SupervisorConfig) -> Registry {
        let slots = (0..cfg.replicas)
            .map(|id| Slot {
                id,
                child: None,
                addr: None,
                state: ReplicaState::Down,
                spawns: 0,
                restarts: 0,
                recent_respawns: VecDeque::new(),
                backoff: Backoff::new(cfg.restart_backoff_base, cfg.restart_backoff_cap),
                respawn_at: Instant::now(),
                started_at: Instant::now(),
                failed_probes: 0,
                port_file: cfg.port_dir.join(format!("replica-{id}.port")),
                external: false,
            })
            .collect();
        Registry {
            slots: Mutex::new(slots),
            rr: AtomicUsize::new(0),
            rng: Mutex::new(SplitMix64::new(cfg.seed.wrapping_add(0x5EED_BA1A))),
            permanent_failures: AtomicUsize::new(0),
        }
    }

    /// A registry over fixed, externally managed backend addresses (no
    /// supervision; used by tests and by fronting already-running daemons).
    pub fn static_backends(addrs: &[String]) -> Registry {
        let slots = addrs
            .iter()
            .enumerate()
            .map(|(id, addr)| Slot {
                id,
                child: None,
                addr: Some(addr.clone()),
                state: ReplicaState::Ready,
                spawns: 0,
                restarts: 0,
                recent_respawns: VecDeque::new(),
                backoff: Backoff::new(Duration::from_millis(100), Duration::from_secs(2)),
                respawn_at: Instant::now(),
                started_at: Instant::now(),
                failed_probes: 0,
                port_file: PathBuf::new(),
                external: true,
            })
            .collect();
        Registry {
            slots: Mutex::new(slots),
            rr: AtomicUsize::new(0),
            rng: Mutex::new(SplitMix64::new(0)),
            permanent_failures: AtomicUsize::new(0),
        }
    }

    /// The `Ready` replicas `(id, addr)`, rotated round-robin so
    /// consecutive requests start their attempt sequence on different
    /// replicas.
    pub fn ready_order(&self) -> Vec<(usize, String)> {
        let slots = self.slots.lock().expect("registry lock");
        let mut ready: Vec<(usize, String)> = slots
            .iter()
            .filter(|s| s.state == ReplicaState::Ready)
            .filter_map(|s| s.addr.clone().map(|a| (s.id, a)))
            .collect();
        if !ready.is_empty() {
            let n = self.rr.fetch_add(1, Ordering::Relaxed) % ready.len();
            ready.rotate_left(n);
        }
        ready
    }

    /// Replicas permanently failed so far.
    pub fn permanent_failures(&self) -> usize {
        self.permanent_failures.load(Ordering::SeqCst)
    }

    /// True when every slot is permanently failed (the balancer gives up).
    pub fn all_failed(&self) -> bool {
        let slots = self.slots.lock().expect("registry lock");
        !slots.is_empty() && slots.iter().all(|s| s.state == ReplicaState::Failed)
    }

    /// Point-in-time slot views for `/stats`.
    pub fn snapshot(&self) -> Vec<ReplicaInfo> {
        let slots = self.slots.lock().expect("registry lock");
        slots
            .iter()
            .map(|s| ReplicaInfo {
                id: s.id,
                state: s.state,
                addr: s.addr.clone(),
                pid: s.child.as_ref().map(Child::id),
                restarts: s.restarts,
            })
            .collect()
    }

    /// Total respawns across all slots (each slot's count beyond its first
    /// spawn).
    pub fn total_restarts(&self) -> u64 {
        let slots = self.slots.lock().expect("registry lock");
        slots.iter().map(|s| s.restarts).sum()
    }
}

/// Builds the spawn command for one slot.
fn spawn_child(cfg: &SupervisorConfig, slot: &Slot) -> std::io::Result<Child> {
    let _ = std::fs::remove_file(&slot.port_file);
    Command::new(&cfg.program)
        .args(&cfg.prefix_args)
        .args(["--addr", "127.0.0.1:0", "--port-file"])
        .arg(&slot.port_file)
        .args(&cfg.common_args)
        .args(cfg.per_replica_args.get(slot.id).map(Vec::as_slice).unwrap_or(&[]))
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
}

/// One `/readyz` probe. Any transport error counts as not ready.
fn probe_ready(addr: &str, timeout: Duration) -> bool {
    match Client::connect(addr, Some(timeout)) {
        Ok(mut c) => matches!(c.request("GET", "/v1/readyz", b""), Ok(r) if r.status == 200),
        Err(_) => false,
    }
}

/// Runs the supervision loop until `shutdown` is set: spawn/respawn
/// children, discover ports, probe readiness, enforce the restart budget.
/// On exit every child is stopped — gracefully (`POST /shutdown`) where
/// possible, killed otherwise — and reaped, so no zombies outlive the
/// balancer.
pub fn supervise(reg: &Registry, cfg: &SupervisorConfig, shutdown: &AtomicBool) {
    let mut tick = 0u32;
    while !shutdown.load(Ordering::SeqCst) {
        run_tick(reg, cfg, tick);
        tick = tick.wrapping_add(1);
        std::thread::sleep(cfg.probe_interval);
    }
    stop_children(reg);
}

fn run_tick(reg: &Registry, cfg: &SupervisorConfig, tick: u32) {
    // Phase 1 (lock held, no network): child liveness, respawns due,
    // startup deadlines, port-file discovery. Collect the probe list.
    let mut probes: Vec<(usize, String, ReplicaState)> = Vec::new();
    {
        let mut slots = reg.slots.lock().expect("registry lock");
        for s in slots.iter_mut() {
            if s.external || s.state == ReplicaState::Failed {
                continue;
            }
            // A dead child moves the slot to Down whatever it was doing.
            if let Some(child) = &mut s.child {
                if let Ok(Some(status)) = child.try_wait() {
                    eprintln!("[balance] replica {} exited ({status}); scheduling restart", s.id);
                    s.child = None;
                    s.addr = None;
                    s.state = ReplicaState::Down;
                    let delay = s.backoff.next_delay(&mut reg.rng.lock().expect("rng lock"));
                    s.respawn_at = Instant::now() + delay;
                }
            }
            match s.state {
                ReplicaState::Down => {
                    if s.child.is_none() && Instant::now() >= s.respawn_at {
                        // Budget check before burning another respawn: only
                        // spawns beyond the first count, over a sliding
                        // window.
                        let now = Instant::now();
                        while s
                            .recent_respawns
                            .front()
                            .is_some_and(|&t| now.duration_since(t) > cfg.restart_window)
                        {
                            s.recent_respawns.pop_front();
                        }
                        if s.recent_respawns.len() >= cfg.restart_budget {
                            eprintln!(
                                "[balance] replica {}: {} restarts within {:?} — giving up \
                                 (permanent failure)",
                                s.id,
                                s.recent_respawns.len(),
                                cfg.restart_window,
                            );
                            s.state = ReplicaState::Failed;
                            reg.permanent_failures.fetch_add(1, Ordering::SeqCst);
                            continue;
                        }
                        if s.spawns > 0 {
                            s.recent_respawns.push_back(now);
                            s.restarts += 1;
                        }
                        match spawn_child(cfg, s) {
                            Ok(child) => {
                                s.spawns += 1;
                                s.child = Some(child);
                                s.state = ReplicaState::Starting;
                                s.started_at = now;
                                s.failed_probes = 0;
                            }
                            Err(e) => {
                                eprintln!("[balance] replica {}: spawn failed: {e}", s.id);
                                let delay =
                                    s.backoff.next_delay(&mut reg.rng.lock().expect("rng lock"));
                                s.respawn_at = Instant::now() + delay;
                            }
                        }
                    }
                }
                ReplicaState::Starting => {
                    if s.addr.is_none() {
                        if let Ok(text) = std::fs::read_to_string(&s.port_file) {
                            let addr = text.trim().to_string();
                            if !addr.is_empty() {
                                s.addr = Some(addr);
                            }
                        }
                    }
                    if s.started_at.elapsed() > cfg.startup_deadline {
                        eprintln!("[balance] replica {}: startup deadline exceeded; killing", s.id);
                        if let Some(mut child) = s.child.take() {
                            let _ = child.kill();
                            let _ = child.wait();
                        }
                        s.addr = None;
                        s.state = ReplicaState::Down;
                        let delay = s.backoff.next_delay(&mut reg.rng.lock().expect("rng lock"));
                        s.respawn_at = Instant::now() + delay;
                        continue;
                    }
                    if let Some(addr) = &s.addr {
                        probes.push((s.id, addr.clone(), s.state));
                    }
                }
                ReplicaState::Ready => {
                    if tick.is_multiple_of(cfg.ready_probe_every.max(1)) {
                        if let Some(addr) = &s.addr {
                            probes.push((s.id, addr.clone(), s.state));
                        }
                    }
                }
                ReplicaState::Failed => {}
            }
        }
    }

    // Phase 2 (no lock): network probes.
    let results: Vec<(usize, ReplicaState, bool)> = probes
        .into_iter()
        .map(|(id, addr, state)| (id, state, probe_ready(&addr, cfg.probe_timeout)))
        .collect();

    // Phase 3 (lock held): apply probe outcomes.
    let mut slots = reg.slots.lock().expect("registry lock");
    for (id, was, ok) in results {
        let Some(s) = slots.iter_mut().find(|s| s.id == id) else { continue };
        if s.state != was {
            continue; // state moved under us (e.g. child died mid-probe)
        }
        match (was, ok) {
            (ReplicaState::Starting, true) => {
                eprintln!(
                    "[balance] replica {} ready at {} ({} restart(s) so far)",
                    s.id,
                    s.addr.as_deref().unwrap_or("?"),
                    s.restarts,
                );
                s.state = ReplicaState::Ready;
                s.failed_probes = 0;
                s.backoff.reset();
            }
            (ReplicaState::Starting, false) => {} // keep waiting (deadline above)
            (ReplicaState::Ready, true) => s.failed_probes = 0,
            (ReplicaState::Ready, false) => {
                s.failed_probes += 1;
                if s.failed_probes >= 3 {
                    eprintln!("[balance] replica {}: failed 3 readiness probes; recycling", s.id);
                    if let Some(mut child) = s.child.take() {
                        let _ = child.kill();
                        let _ = child.wait();
                    }
                    s.addr = None;
                    s.state = ReplicaState::Down;
                    let delay = s.backoff.next_delay(&mut reg.rng.lock().expect("rng lock"));
                    s.respawn_at = Instant::now() + delay;
                }
            }
            _ => {}
        }
    }
}

/// Stops every supervised child: graceful `POST /shutdown` first, a hard
/// kill for stragglers, and a `wait` either way so children are reaped.
fn stop_children(reg: &Registry) {
    let mut slots = reg.slots.lock().expect("registry lock");
    for s in slots.iter_mut() {
        let Some(mut child) = s.child.take() else { continue };
        if let Some(addr) = &s.addr {
            if let Ok(mut c) = Client::connect(addr, Some(Duration::from_millis(500))) {
                let _ = c.request("POST", "/v1/shutdown", b"");
            }
        }
        let deadline = Instant::now() + Duration::from_secs(3);
        loop {
            match child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20))
                }
                _ => {
                    let _ = child.kill();
                    let _ = child.wait();
                    break;
                }
            }
        }
        s.state = ReplicaState::Down;
        s.addr = None;
        let _ = std::fs::remove_file(&s.port_file);
    }
}
