//! Balancer failover semantics against scripted mock backends.
//!
//! These tests pin the retry contract without real daemons in the loop:
//! before-response failures and complete 5xxs fail over; mid-response
//! failures abort with 502 after exactly one dispatch; 4xxs are forwarded
//! untouched; overload sheds with `503 + Retry-After`; slow-loris clients
//! are cut off with 408.

use doduo_balance::{BalanceConfig, BalanceHandle, Balancer};
use doduo_served::handler::serve_blocking;
use doduo_served::http::Client;
use doduo_served::{HttpRequest, HttpResponse};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What a mock backend does with each fully received request.
#[derive(Clone, Copy)]
enum Behavior {
    /// Complete `status` response with a tiny JSON body; keep-alive.
    Status(u16),
    /// Complete 200 carrying an `x-model-version` header (a
    /// lifecycle-aware replica).
    Versioned,
    /// Complete 503 carrying a `Retry-After` hint (replica backpressure).
    Busy(u64),
    /// Advertise a 20-byte body, send 5 bytes, sever the connection.
    PartialThenClose,
    /// Read the request, close without writing a byte.
    CloseBeforeResponse,
}

struct Mock {
    addr: String,
    /// Requests fully received (each one is a dispatch from the balancer).
    hits: Arc<AtomicUsize>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Drop for Mock {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// A scripted backend over the same [`Handler`]-driven blocking server the
/// daemon crate ships (`serve_blocking`), so the HTTP plumbing under these
/// tests is the shared implementation, not a hand-rolled mini-server. The
/// scripted part is just the response each fully received request earns.
///
/// [`Handler`]: doduo_served::Handler
fn mock(behavior: Behavior) -> Mock {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind mock");
    let addr = listener.local_addr().expect("addr").to_string();
    let hits = Arc::new(AtomicUsize::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let thread = {
        let (hits, stop) = (Arc::clone(&hits), Arc::clone(&stop));
        std::thread::spawn(move || {
            let handler = move |_req: &HttpRequest| {
                hits.fetch_add(1, Ordering::SeqCst);
                match behavior {
                    Behavior::Status(status) => {
                        HttpResponse::json(status, format!("{{\"mock\":{status}}}\n"))
                    }
                    Behavior::Versioned => HttpResponse::json(200, "{\"mock\":200}\n".to_string())
                        .with_header("x-model-version", "9-deadbeef"),
                    Behavior::Busy(secs) => HttpResponse::json(503, "{\"mock\":503}\n".to_string())
                        .with_header("retry-after", &secs.to_string()),
                    Behavior::PartialThenClose => {
                        let mut torn = b"HTTP/1.1 200 OK\r\ncontent-type: application/json\r\n\
                              content-length: 20\r\nconnection: keep-alive\r\n\r\n"
                            .to_vec();
                        torn.extend_from_slice(b"{\"tor");
                        HttpResponse::RawThenClose(torn)
                    }
                    Behavior::CloseBeforeResponse => HttpResponse::Hangup,
                }
            };
            serve_blocking(listener, &handler, &stop).expect("serve mock");
        })
    };
    Mock { addr, hits, stop, thread: Some(thread) }
}

/// An address that refuses connections (bound then immediately released).
fn dead_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    listener.local_addr().expect("addr").to_string()
}

fn start_balancer(
    cfg: BalanceConfig,
) -> (SocketAddr, BalanceHandle, std::thread::JoinHandle<Result<(), String>>) {
    let balancer = Balancer::bind(cfg).expect("bind balancer");
    let addr = balancer.addr();
    let handle = balancer.handle();
    let thread = std::thread::spawn(move || balancer.run());
    (addr, handle, thread)
}

fn cfg_with_backends(backends: Vec<String>) -> BalanceConfig {
    BalanceConfig {
        addr: "127.0.0.1:0".into(),
        static_backends: backends,
        retry_rounds: 2,
        connect_timeout: Duration::from_millis(500),
        response_timeout: Duration::from_millis(2_000),
        retry_backoff_base: Duration::from_millis(5),
        retry_backoff_cap: Duration::from_millis(20),
        ..BalanceConfig::default()
    }
}

fn get_stats(addr: &SocketAddr) -> String {
    let mut client = Client::connect(&addr.to_string(), Some(Duration::from_secs(5)))
        .expect("connect for stats");
    let resp = client.request("GET", "/stats", b"").expect("stats");
    assert_eq!(resp.status, 200);
    String::from_utf8(resp.body).expect("utf8 stats")
}

fn stat(stats: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let rest = &stats[stats.find(&pat).unwrap_or_else(|| panic!("{key} in {stats}")) + pat.len()..];
    rest.chars().take_while(char::is_ascii_digit).collect::<String>().parse().expect("number")
}

#[test]
fn connect_refused_fails_over_to_the_next_replica() {
    let live = mock(Behavior::Status(200));
    let (addr, handle, thread) =
        start_balancer(cfg_with_backends(vec![dead_addr(), live.addr.clone()]));

    let mut client =
        Client::connect(&addr.to_string(), Some(Duration::from_secs(5))).expect("connect");
    let resp = client.request("POST", "/annotate", b"{}").expect("request");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, b"{\"mock\":200}\n");
    assert_eq!(live.hits.load(Ordering::SeqCst), 1);

    let stats = get_stats(&addr);
    assert_eq!(stat(&stats, "requests_ok"), 1, "stats: {stats}");
    assert_eq!(stat(&stats, "retries"), 1, "the dead replica cost one attempt: {stats}");
    assert_eq!(stat(&stats, "requests_failed"), 0, "stats: {stats}");

    handle.shutdown();
    thread.join().expect("join").expect("clean run");
}

#[test]
fn close_before_response_is_retried_elsewhere() {
    let flaky = mock(Behavior::CloseBeforeResponse);
    let live = mock(Behavior::Status(200));
    let (addr, handle, thread) =
        start_balancer(cfg_with_backends(vec![flaky.addr.clone(), live.addr.clone()]));

    let mut client =
        Client::connect(&addr.to_string(), Some(Duration::from_secs(5))).expect("connect");
    let resp = client.request("POST", "/annotate", b"{}").expect("request");
    assert_eq!(resp.status, 200, "zero response bytes flowed, so the request was retryable");
    assert_eq!(flaky.hits.load(Ordering::SeqCst), 1);
    assert_eq!(live.hits.load(Ordering::SeqCst), 1);

    handle.shutdown();
    thread.join().expect("join").expect("clean run");
}

#[test]
fn complete_5xx_fails_over_and_exhaustion_forwards_the_last_5xx() {
    let sick = mock(Behavior::Status(500));
    let live = mock(Behavior::Status(200));
    let (addr, handle, thread) =
        start_balancer(cfg_with_backends(vec![sick.addr.clone(), live.addr.clone()]));

    let mut client =
        Client::connect(&addr.to_string(), Some(Duration::from_secs(5))).expect("connect");
    let resp = client.request("POST", "/annotate", b"{}").expect("request");
    assert_eq!(resp.status, 200, "the healthy replica's answer wins over the 500");
    assert_eq!(sick.hits.load(Ordering::SeqCst), 1);

    handle.shutdown();
    thread.join().expect("join").expect("clean run");

    // All replicas 5xx: the last one is forwarded honestly after the
    // retry rounds are exhausted.
    let sick2 = mock(Behavior::Status(500));
    let (addr, handle, thread) = start_balancer(cfg_with_backends(vec![sick2.addr.clone()]));
    let mut client =
        Client::connect(&addr.to_string(), Some(Duration::from_secs(5))).expect("connect");
    let resp = client.request("POST", "/annotate", b"{}").expect("request");
    assert_eq!(resp.status, 500);
    assert_eq!(resp.body, b"{\"mock\":500}\n", "the replica's own 5xx body is preserved");
    assert_eq!(sick2.hits.load(Ordering::SeqCst), 2, "one dispatch per retry round");
    let stats = get_stats(&addr);
    assert_eq!(stat(&stats, "requests_failed"), 1, "stats: {stats}");

    handle.shutdown();
    thread.join().expect("join").expect("clean run");
}

/// The `Retry-After` propagation pin: when every replica answers a
/// complete 503 and the retry rounds are exhausted, the forwarded 503 must
/// still carry the *backend's* `Retry-After` hint, not drop it.
#[test]
fn retry_exhaustion_forwards_the_backends_retry_after_hint() {
    let busy = mock(Behavior::Busy(7));
    let (addr, handle, thread) = start_balancer(cfg_with_backends(vec![busy.addr.clone()]));

    let mut client =
        Client::connect(&addr.to_string(), Some(Duration::from_secs(5))).expect("connect");
    let resp = client.request("POST", "/annotate", b"{}").expect("request");
    assert_eq!(resp.status, 503);
    assert_eq!(resp.retry_after, Some(7), "the replica's own hint must survive the relay");
    assert_eq!(busy.hits.load(Ordering::SeqCst), 2, "one dispatch per retry round");

    handle.shutdown();
    thread.join().expect("join").expect("clean run");
}

/// Proxied responses re-emit the replica's `x-model-version` header, so a
/// client can tell which model answered even through the balancer.
#[test]
fn annotate_responses_relay_the_model_version_header() {
    let live = mock(Behavior::Versioned);
    let (addr, handle, thread) = start_balancer(cfg_with_backends(vec![live.addr.clone()]));

    let mut client =
        Client::connect(&addr.to_string(), Some(Duration::from_secs(5))).expect("connect");
    let resp = client.request("POST", "/annotate", b"{}").expect("request");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.model_version.as_deref(), Some("9-deadbeef"), "version header relayed");

    handle.shutdown();
    thread.join().expect("join").expect("clean run");
}

/// A model upload fans out to every ready replica; when all accept, the
/// swap commits and the report lists every replica as swapped.
#[test]
fn model_fanout_commits_when_every_replica_accepts() {
    let a = mock(Behavior::Versioned);
    let b = mock(Behavior::Versioned);
    let (addr, handle, thread) =
        start_balancer(cfg_with_backends(vec![a.addr.clone(), b.addr.clone()]));

    let mut client =
        Client::connect(&addr.to_string(), Some(Duration::from_secs(5))).expect("connect");
    let resp = client.request("POST", "/model", b"FAKEBLOB").expect("request");
    assert_eq!(resp.status, 200);
    let body = String::from_utf8(resp.body).expect("utf8");
    assert!(body.contains("\"status\":\"swapped\""), "body: {body}");
    assert!(body.contains("\"model_version\":\"9-deadbeef\""), "body: {body}");
    assert_eq!(body.matches("\"outcome\":\"swapped\"").count(), 2, "body: {body}");
    assert_eq!(a.hits.load(Ordering::SeqCst), 1);
    assert_eq!(b.hits.load(Ordering::SeqCst), 1);
    let stats = get_stats(&addr);
    assert_eq!(stat(&stats, "model_swaps"), 1, "stats: {stats}");

    handle.shutdown();
    thread.join().expect("join").expect("clean run");
}

/// All-or-nothing: when one replica rejects the bundle, the upload stops
/// there, the replicas that already accepted are rolled back (stopped,
/// absent a previous fleet-wide blob to re-upload), and the client gets a
/// 502 with the per-replica report.
#[test]
fn model_fanout_is_all_or_nothing_when_a_replica_rejects() {
    let ok = mock(Behavior::Versioned);
    let bad = mock(Behavior::Status(400));
    let (addr, handle, thread) =
        start_balancer(cfg_with_backends(vec![ok.addr.clone(), bad.addr.clone()]));

    let mut client =
        Client::connect(&addr.to_string(), Some(Duration::from_secs(5))).expect("connect");
    let resp = client.request("POST", "/model", b"FAKEBLOB").expect("request");
    assert_eq!(resp.status, 502, "a partial swap must surface as a gateway error");
    let body = String::from_utf8(resp.body).expect("utf8");
    assert!(body.contains("\"code\":\"swap_rejected\""), "body: {body}");
    assert!(body.contains("\"outcome\":\"rejected (400)\""), "body: {body}");
    assert!(
        body.contains("\"outcome\":\"stopped\""),
        "the accepter must not keep the rejected model: {body}"
    );
    assert_eq!(ok.hits.load(Ordering::SeqCst), 2, "upload, then the rollback shutdown");
    assert_eq!(bad.hits.load(Ordering::SeqCst), 1);
    let stats = get_stats(&addr);
    assert_eq!(stat(&stats, "model_swap_failures"), 1, "stats: {stats}");
    assert_eq!(stat(&stats, "model_swaps"), 0, "stats: {stats}");

    handle.shutdown();
    thread.join().expect("join").expect("clean run");
}

#[test]
fn mid_response_failure_aborts_with_502_after_exactly_one_dispatch() {
    let torn = mock(Behavior::PartialThenClose);
    let live = mock(Behavior::Status(200));
    let (addr, handle, thread) =
        start_balancer(cfg_with_backends(vec![torn.addr.clone(), live.addr.clone()]));

    let mut client =
        Client::connect(&addr.to_string(), Some(Duration::from_secs(5))).expect("connect");
    let resp = client.request("POST", "/annotate", b"{}").expect("request");
    assert_eq!(resp.status, 502, "response bytes flowed, so no retry is allowed");
    assert_eq!(torn.hits.load(Ordering::SeqCst), 1, "exactly one dispatch");
    assert_eq!(live.hits.load(Ordering::SeqCst), 0, "never re-dispatched to the healthy replica");

    let stats = get_stats(&addr);
    assert_eq!(stat(&stats, "mid_response_aborts"), 1, "stats: {stats}");
    assert_eq!(stat(&stats, "requests_failed"), 1, "stats: {stats}");

    handle.shutdown();
    thread.join().expect("join").expect("clean run");
}

#[test]
fn complete_4xx_is_forwarded_without_retry() {
    let strict = mock(Behavior::Status(400));
    let live = mock(Behavior::Status(200));
    let (addr, handle, thread) =
        start_balancer(cfg_with_backends(vec![strict.addr.clone(), live.addr.clone()]));

    let mut client =
        Client::connect(&addr.to_string(), Some(Duration::from_secs(5))).expect("connect");
    let resp = client.request("POST", "/annotate", b"not json").expect("request");
    assert_eq!(resp.status, 400, "a complete 4xx means the request is bad, not the replica");
    assert_eq!(resp.body, b"{\"mock\":400}\n");
    assert_eq!(strict.hits.load(Ordering::SeqCst), 1);
    assert_eq!(live.hits.load(Ordering::SeqCst), 0, "4xx is never retried");

    handle.shutdown();
    thread.join().expect("join").expect("clean run");
}

#[test]
fn overload_sheds_with_503_and_retry_after() {
    let live = mock(Behavior::Status(200));
    let cfg = BalanceConfig {
        max_inflight: 0, // every proxied request is over the cap
        ..cfg_with_backends(vec![live.addr.clone()])
    };
    let (addr, handle, thread) = start_balancer(cfg);

    let mut client =
        Client::connect(&addr.to_string(), Some(Duration::from_secs(5))).expect("connect");
    let resp = client.request("POST", "/annotate", b"{}").expect("request");
    assert_eq!(resp.status, 503);
    assert_eq!(resp.retry_after, Some(1), "sheds carry a Retry-After hint");
    assert_eq!(live.hits.load(Ordering::SeqCst), 0, "shed requests never reach a replica");

    let stats = get_stats(&addr);
    assert_eq!(stat(&stats, "sheds"), 1, "stats: {stats}");

    handle.shutdown();
    thread.join().expect("join").expect("clean run");
}

#[test]
fn slow_loris_client_is_cut_off_with_408() {
    let live = mock(Behavior::Status(200));
    let cfg = BalanceConfig {
        request_deadline: Duration::from_millis(300),
        ..cfg_with_backends(vec![live.addr.clone()])
    };
    let (addr, handle, thread) = start_balancer(cfg);

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    stream.write_all(b"POST /annotate HTTP/1.1\r\n").expect("request line");
    // Dribble header bytes slower than the request deadline allows.
    for chunk in ["content-", "length", ": 2", "\r\n", "ho"] {
        std::thread::sleep(Duration::from_millis(120));
        if stream.write_all(chunk.as_bytes()).is_err() {
            break; // balancer already gave up on us — fine
        }
    }
    let mut reply = String::new();
    let mut reader = BufReader::new(&stream);
    reader.read_line(&mut reply).expect("read status line");
    assert!(
        reply.starts_with("HTTP/1.1 408"),
        "slow request must be rejected with 408, got {reply:?}"
    );
    assert_eq!(live.hits.load(Ordering::SeqCst), 0);

    handle.shutdown();
    thread.join().expect("join").expect("clean run");
}

#[test]
fn local_endpoints_report_health_and_readiness() {
    // No ready replica at all: liveness stays 200, readiness is 503.
    let (addr, handle, thread) = start_balancer(cfg_with_backends(Vec::new()));
    let mut client =
        Client::connect(&addr.to_string(), Some(Duration::from_secs(5))).expect("connect");

    let resp = client.request("GET", "/healthz", b"").expect("healthz");
    assert_eq!(resp.status, 200, "the balancer itself is alive");
    let body = String::from_utf8(resp.body).expect("utf8");
    assert!(body.contains("\"ready_replicas\":0"), "healthz: {body}");

    let resp = client.request("GET", "/readyz", b"").expect("readyz");
    assert_eq!(resp.status, 503, "nowhere to route traffic");
    assert_eq!(resp.retry_after, Some(1));

    // Streaming is not proxied.
    let resp = client.request("POST", "/annotate_stream", b"{}").expect("stream");
    assert_eq!(resp.status, 501);

    handle.shutdown();
    thread.join().expect("join").expect("clean run");

    // With a live backend the balancer reports ready.
    let live = mock(Behavior::Status(200));
    let (addr, handle, thread) = start_balancer(cfg_with_backends(vec![live.addr.clone()]));
    let mut client =
        Client::connect(&addr.to_string(), Some(Duration::from_secs(5))).expect("connect");
    let resp = client.request("GET", "/readyz", b"").expect("readyz");
    assert_eq!(resp.status, 200);

    handle.shutdown();
    thread.join().expect("join").expect("clean run");
}
