//! The chaos suite: real balancer + real replica processes with
//! deterministic fault injection, asserting the two invariants the whole
//! design exists for —
//!
//! 1. **zero client-visible errors for retryable faults** (crashes and
//!    stalls strike before a response byte, so failover hides them), and
//! 2. **byte-identity**: every `200` the balancer returns is byte-identical
//!    to the offline annotation of the same table, no matter which replica
//!    answered or how many died along the way.
//!
//! Replicas are spawned by self-exec (`doduo-balance replica …`), so the
//! only binary these tests need is the one cargo builds for this package.

use doduo_core::blob_crc;
use doduo_served::bootstrap::{synthetic_world, SyntheticWorld};
use doduo_served::http::Client;
use doduo_served::json::{annotations_response, table_to_json};
use doduo_served::validate::offline_response;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BALANCE_BIN: &str = env!("CARGO_BIN_EXE_doduo-balance");

/// A scratch dir unique to this test process + test name.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("doduo-chaos-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The quick synthetic world, with its bundle checkpointed to disk so the
/// replica processes load the exact same weights the test compares against.
fn world_with_checkpoint(dir: &std::path::Path) -> (SyntheticWorld, PathBuf) {
    let world = synthetic_world(true, 42);
    let ckpt = dir.join("bundle.ckpt");
    world.bundle.save_to(ckpt.to_str().expect("utf8 path")).expect("save checkpoint");
    (world, ckpt)
}

/// Offline reference bytes for one table — the byte-identity target.
fn offline_bytes(world: &SyntheticWorld, idx: usize) -> Vec<u8> {
    let ann = world.annotator().annotate(&world.tables[idx]);
    annotations_response(&[ann], false).into_bytes()
}

struct BalancerProc {
    child: Child,
    addr: String,
}

impl BalancerProc {
    /// Spawns `doduo-balance` with `extra` flags on top of the common fleet
    /// flags, waits for its port file, and waits until `/readyz` is 200.
    fn start(dir: &std::path::Path, ckpt: &std::path::Path, extra: &[&str]) -> BalancerProc {
        let port_file = dir.join("balance.port");
        let _ = std::fs::remove_file(&port_file);
        let mut cmd = Command::new(BALANCE_BIN);
        cmd.args([
            "--checkpoint",
            ckpt.to_str().expect("utf8"),
            "--addr",
            "127.0.0.1:0",
            "--port-file",
            port_file.to_str().expect("utf8"),
            "--port-dir",
            dir.to_str().expect("utf8"),
            "--workers",
            "2",
            "--threads",
            "1",
            "--seed",
            "7",
        ])
        .args(extra)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::inherit());
        let child = cmd.spawn().expect("spawn doduo-balance");

        // Port file, then readiness (replicas load the checkpoint first).
        let deadline = Instant::now() + Duration::from_secs(120);
        let addr = loop {
            assert!(Instant::now() < deadline, "balancer never wrote its port file");
            if let Ok(s) = std::fs::read_to_string(&port_file) {
                let s = s.trim().to_string();
                if !s.is_empty() {
                    break s;
                }
            }
            std::thread::sleep(Duration::from_millis(20));
        };
        loop {
            assert!(Instant::now() < deadline, "balancer never became ready");
            if let Ok(mut c) = Client::connect(&addr, Some(Duration::from_millis(500))) {
                if let Ok(resp) = c.request("GET", "/readyz", b"") {
                    if resp.status == 200 {
                        break;
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        BalancerProc { child, addr }
    }

    fn stats(&self) -> String {
        let mut c =
            Client::connect(&self.addr, Some(Duration::from_secs(5))).expect("connect for stats");
        let resp = c.request("GET", "/stats", b"").expect("stats");
        assert_eq!(resp.status, 200);
        String::from_utf8(resp.body).expect("utf8 stats")
    }
}

impl Drop for BalancerProc {
    fn drop(&mut self) {
        // Graceful first: the balancer stops its replica children on the
        // way out; a bare kill would orphan them.
        if let Ok(mut c) = Client::connect(&self.addr, Some(Duration::from_millis(500))) {
            let _ = c.request("POST", "/shutdown", b"");
        }
        let deadline = Instant::now() + Duration::from_secs(15);
        while Instant::now() < deadline {
            if let Ok(Some(_)) = self.child.try_wait() {
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn stat(stats: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let rest = &stats[stats.find(&pat).unwrap_or_else(|| panic!("{key} in {stats}")) + pat.len()..];
    rest.chars().take_while(char::is_ascii_digit).collect::<String>().parse().expect("number")
}

/// A crashing replica is invisible to clients: crashes strike before any
/// response byte, so every request fails over and every answer stays
/// byte-identical to offline annotation. The supervisor restarts the
/// crashed replica (restart counter moves).
#[test]
fn crash_faults_are_invisible_and_the_replica_is_restarted() {
    let dir = scratch("crash");
    let (world, ckpt) = world_with_checkpoint(&dir);
    let proc = BalancerProc::start(
        &dir,
        &ckpt,
        &["--replicas", "3", "--chaos-replica", "0:crash_after=8,seed=11"],
    );

    let mut client = Client::connect(&proc.addr, Some(Duration::from_secs(30))).expect("connect");
    let n_tables = world.tables.len().min(4);
    for i in 0..40 {
        let idx = i % n_tables;
        let body = table_to_json(&world.tables[idx]);
        let resp = client.request("POST", "/annotate", body.as_bytes()).expect("request");
        assert_eq!(resp.status, 200, "request {i}: retryable faults must be client-invisible");
        assert_eq!(
            resp.body,
            offline_bytes(&world, idx),
            "request {i}: byte-identity must survive failover"
        );
    }

    // The crash actually happened and was healed, not merely avoided.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = proc.stats();
        if stat(&stats, "restarts") >= 1 {
            assert_eq!(stat(&stats, "requests_failed"), 0, "stats: {stats}");
            assert_eq!(stat(&stats, "permanent_failures"), 0, "stats: {stats}");
            break;
        }
        assert!(Instant::now() < deadline, "crashed replica was never restarted: {stats}");
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// A stalled replica (chaos delay far above the balancer's response
/// timeout) never blocks clients: the first-byte timeout is a
/// before-response fault, so requests fail over to the healthy replica.
#[test]
fn stalled_replica_times_out_and_fails_over() {
    let dir = scratch("delay");
    let (world, ckpt) = world_with_checkpoint(&dir);
    let proc = BalancerProc::start(
        &dir,
        &ckpt,
        &[
            "--replicas",
            "2",
            "--chaos-replica",
            "0:delay_ms=5000,seed=3",
            "--response-timeout-ms",
            "400",
        ],
    );

    let mut client = Client::connect(&proc.addr, Some(Duration::from_secs(30))).expect("connect");
    for i in 0..8 {
        let idx = i % world.tables.len().min(3);
        let body = table_to_json(&world.tables[idx]);
        let t0 = Instant::now();
        let resp = client.request("POST", "/annotate", body.as_bytes()).expect("request");
        assert_eq!(resp.status, 200, "request {i}: a stalled replica must not surface errors");
        assert_eq!(resp.body, offline_bytes(&world, idx), "request {i}: byte-identity");
        assert!(
            t0.elapsed() < Duration::from_secs(4),
            "request {i} took {:?}: the 5s stall must never be waited out",
            t0.elapsed()
        );
    }
    let stats = proc.stats();
    assert_eq!(stat(&stats, "requests_failed"), 0, "stats: {stats}");
}

/// A replica that tears connections mid-response produces 502s (never a
/// silent retry — the response started flowing), while requests landing on
/// the healthy replica still come back byte-identical. Both outcomes must
/// occur, and nothing else.
#[test]
fn mid_response_resets_surface_as_502_without_redispatch() {
    let dir = scratch("reset");
    let (world, ckpt) = world_with_checkpoint(&dir);
    let proc = BalancerProc::start(
        &dir,
        &ckpt,
        &["--replicas", "2", "--chaos-replica", "0:reset_prob=1.0,seed=5"],
    );

    let mut torn = 0u32;
    let mut clean = 0u32;
    for i in 0..16 {
        let idx = i % world.tables.len().min(3);
        let body = table_to_json(&world.tables[idx]);
        // The 502 arrives with connection intact, but reconnect per request
        // to keep the schedule independent of keep-alive pooling.
        let mut client =
            Client::connect(&proc.addr, Some(Duration::from_secs(30))).expect("connect");
        let resp = client.request("POST", "/annotate", body.as_bytes()).expect("request");
        match resp.status {
            200 => {
                assert_eq!(resp.body, offline_bytes(&world, idx), "request {i}: byte-identity");
                clean += 1;
            }
            502 => torn += 1,
            other => panic!("request {i}: unexpected status {other}"),
        }
    }
    assert!(torn >= 1, "the resetting replica was never hit");
    assert!(clean >= 1, "the healthy replica was never hit");
    let stats = proc.stats();
    assert_eq!(stat(&stats, "mid_response_aborts"), u64::from(torn), "stats: {stats}");
}

/// The swap-under-crash schedule: a fleet-wide model upload lands while a
/// chaos replica is crash-looping. The invariants:
///
/// * every `200` is byte-identical to **exactly one** of the two offline
///   references (old model XOR new model — never a torn mix), and its
///   `x-model-version` CRC names the model that produced those bytes;
/// * a committed swap eventually converges: restarted replicas boot the
///   old checkpoint but the catch-up loop re-pushes the fleet model, so
///   fresh responses settle on the new bytes.
///
/// A chaos crash can strike mid-upload; that surfaces as an all-or-nothing
/// `502` rollback, after which the fleet is all-old and the upload is
/// simply retried.
#[test]
fn model_swap_under_crash_chaos_is_atomic_and_converges() {
    let dir = scratch("swap");
    let (world, ckpt) = world_with_checkpoint(&dir);
    let new_world = synthetic_world(true, 99);
    let next_ckpt = dir.join("next.ckpt");
    new_world.bundle.save_to(next_ckpt.to_str().expect("utf8")).expect("save next checkpoint");
    let new_blob = std::fs::read(&next_ckpt).expect("read next blob");
    let old_blob = std::fs::read(&ckpt).expect("read boot blob");
    let old_crc = format!("-{:08x}", blob_crc(&old_blob).expect("boot blob crc"));
    let new_crc = format!("-{:08x}", blob_crc(&new_blob).expect("next blob crc"));

    let proc = BalancerProc::start(
        &dir,
        &ckpt,
        &["--replicas", "3", "--chaos-replica", "0:crash_after=6,seed=11"],
    );

    // Offline references for the same request bodies under both models.
    let n_tables = world.tables.len().min(3);
    let bodies: Vec<String> = (0..n_tables).map(|i| table_to_json(&world.tables[i])).collect();
    let old_refs: Vec<Vec<u8>> = (0..n_tables).map(|i| offline_bytes(&world, i)).collect();
    let new_refs: Vec<Vec<u8>> = bodies
        .iter()
        .map(|b| offline_response(&new_world.bundle, b).expect("offline").into_bytes())
        .collect();

    // Warm traffic on the boot model: old bytes, old version CRC.
    let mut client = Client::connect(&proc.addr, Some(Duration::from_secs(30))).expect("connect");
    for i in 0..12 {
        let idx = i % n_tables;
        let resp = client.request("POST", "/annotate", bodies[idx].as_bytes()).expect("request");
        assert_eq!(resp.status, 200, "request {i}: crashes stay client-invisible");
        assert_eq!(resp.body, old_refs[idx], "request {i}: pre-swap byte-identity");
        let v = resp.model_version.as_deref().expect("pre-swap version header");
        assert!(v.ends_with(&old_crc), "request {i}: version {v} is not the boot model");
    }

    // Upload the new model fleet-wide. A crash landing mid-upload rolls the
    // fleet back (502, all-old) — retry until the swap commits.
    let deadline = Instant::now() + Duration::from_secs(90);
    loop {
        assert!(Instant::now() < deadline, "fleet swap never committed under chaos");
        let mut c = Client::connect(&proc.addr, Some(Duration::from_secs(30))).expect("connect");
        let resp = c.request("POST", "/model", &new_blob).expect("model upload");
        let body = String::from_utf8_lossy(&resp.body).to_string();
        if resp.status == 200 {
            assert!(body.contains("\"status\":\"swapped\""), "commit body: {body}");
            assert!(body.contains(&new_crc), "commit must report the new version: {body}");
            break;
        }
        assert_eq!(resp.status, 502, "swap must commit or roll back, got: {body}");
        assert!(body.contains("swap_rejected"), "rollback body: {body}");
        std::thread::sleep(Duration::from_millis(500));
    }

    // Post-commit: every response is old XOR new (the crash replica boots
    // old and is caught up asynchronously), and the fleet settles on new.
    let mut consecutive_new = 0usize;
    let mut i = 0usize;
    while consecutive_new < 12 {
        assert!(Instant::now() < deadline, "fleet never converged on the new model");
        let idx = i % n_tables;
        i += 1;
        let resp = client.request("POST", "/annotate", bodies[idx].as_bytes()).expect("request");
        assert_eq!(resp.status, 200, "request {i}: crashes stay client-invisible");
        let v = resp.model_version.as_deref().expect("post-swap version header").to_string();
        if resp.body == new_refs[idx] {
            assert!(v.ends_with(&new_crc), "new bytes must carry the new version, got {v}");
            consecutive_new += 1;
        } else {
            assert_eq!(
                resp.body, old_refs[idx],
                "request {i}: torn response matches neither model"
            );
            assert!(v.ends_with(&old_crc), "old bytes must carry the boot version, got {v}");
            consecutive_new = 0;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    let stats = proc.stats();
    assert!(stat(&stats, "model_swaps") >= 1, "stats: {stats}");
    assert_eq!(stat(&stats, "requests_failed"), 0, "stats: {stats}");
}

/// A crash-looping replica exhausts its restart budget and is escalated to
/// permanent failure; the survivor keeps answering every request.
#[test]
fn crash_loop_exhausts_the_restart_budget_and_is_escalated() {
    let dir = scratch("budget");
    let (world, ckpt) = world_with_checkpoint(&dir);
    let proc = BalancerProc::start(
        &dir,
        &ckpt,
        &[
            "--replicas",
            "2",
            "--chaos-replica",
            "0:crash_after=1,seed=9",
            "--restart-budget",
            "2",
            "--restart-window-secs",
            "300",
        ],
    );

    // Keep traffic flowing: each time the crash-looping replica comes back
    // it dies on its next request, until the budget trips.
    let mut client = Client::connect(&proc.addr, Some(Duration::from_secs(30))).expect("connect");
    let deadline = Instant::now() + Duration::from_secs(90);
    let mut sent = 0u32;
    loop {
        let idx = (sent as usize) % world.tables.len().min(3);
        let body = table_to_json(&world.tables[idx]);
        let resp = client.request("POST", "/annotate", body.as_bytes()).expect("request");
        assert_eq!(resp.status, 200, "request {sent}: crashes stay client-invisible");
        assert_eq!(resp.body, offline_bytes(&world, idx), "request {sent}: byte-identity");
        sent += 1;
        let stats = proc.stats();
        if stat(&stats, "permanent_failures") >= 1 {
            assert_eq!(stat(&stats, "permanent_failures"), 1, "stats: {stats}");
            assert!(stats.contains("\"state\":\"failed\""), "stats: {stats}");
            break;
        }
        assert!(Instant::now() < deadline, "budget never tripped after {sent} requests: {stats}");
        std::thread::sleep(Duration::from_millis(50));
    }

    // The fleet is degraded but alive: the survivor answers alone.
    for i in 0..5 {
        let idx = i % world.tables.len().min(3);
        let body = table_to_json(&world.tables[idx]);
        let resp = client.request("POST", "/annotate", body.as_bytes()).expect("request");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, offline_bytes(&world, idx));
    }
}
