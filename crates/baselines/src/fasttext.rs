//! fastText-style static subword embeddings (Bojanowski et al., 2017).
//!
//! The §7 case study uses off-the-shelf fastText as the "go-to" baseline
//! embedding. This is a from-scratch reproduction of its core: words are
//! bags of hashed character n-grams, trained with skip-gram + negative
//! sampling. The embeddings are *static* — the same word always maps to the
//! same vector — which is exactly the property the paper contrasts against
//! Doduo's contextualized column embeddings (Table 9).

#![allow(clippy::needless_range_loop)] // index loops over matrix coordinates are clearest here
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Training hyper-parameters.
#[derive(Clone, Debug)]
pub struct FastTextConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Number of hashed n-gram buckets.
    pub buckets: usize,
    /// Character n-gram range (inclusive).
    pub min_n: usize,
    pub max_n: usize,
    /// Skip-gram window radius.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    pub epochs: usize,
    pub lr: f32,
    pub seed: u64,
    /// Words occurring fewer times are skipped as centers/contexts.
    pub min_count: usize,
}

impl Default for FastTextConfig {
    fn default() -> Self {
        FastTextConfig {
            dim: 32,
            buckets: 4096,
            min_n: 3,
            max_n: 5,
            window: 2,
            negatives: 3,
            epochs: 3,
            lr: 0.05,
            seed: 42,
            min_count: 2,
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
        .map(|w| w.to_lowercase())
        .collect()
}

/// A trained fastText-style embedder.
pub struct FastText {
    cfg: FastTextConfig,
    /// Input-side bucket embeddings, `[buckets][dim]` flattened.
    input: Vec<f32>,
    /// Output-side word embeddings for negative sampling, keyed by word id.
    vocab: HashMap<String, usize>,
}

impl FastText {
    /// Hashed n-gram bucket ids of a word (with `<`/`>` boundary markers),
    /// including the whole-word token.
    fn ngram_buckets(&self, word: &str) -> Vec<usize> {
        ngram_buckets_cfg(word, &self.cfg)
    }

    /// Trains skip-gram with negative sampling on text lines.
    pub fn train(corpus: &[String], cfg: FastTextConfig) -> FastText {
        let mut counts: HashMap<String, usize> = HashMap::new();
        let token_lines: Vec<Vec<String>> = corpus.iter().map(|l| tokenize(l)).collect();
        for line in &token_lines {
            for w in line {
                *counts.entry(w.clone()).or_insert(0) += 1;
            }
        }
        let mut words: Vec<String> =
            counts.iter().filter(|(_, &c)| c >= cfg.min_count).map(|(w, _)| w.clone()).collect();
        words.sort_unstable();
        let vocab: HashMap<String, usize> =
            words.iter().enumerate().map(|(i, w)| (w.clone(), i)).collect();
        // Unigram^0.75 negative-sampling table, built in word-id order:
        // iterating the HashMap here would randomize the table layout per
        // process (RandomState) and with it every negative draw, making
        // training non-reproducible despite the seeded RNG.
        let mut neg_table = Vec::with_capacity(4096);
        for (id, w) in words.iter().enumerate() {
            let f = (counts[w] as f64).powf(0.75);
            let slots = (f.ceil() as usize).min(64);
            for _ in 0..slots {
                neg_table.push(id);
            }
        }
        if neg_table.is_empty() {
            neg_table.push(0);
        }

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let d = cfg.dim;
        let mut input = vec![0.0f32; cfg.buckets * d];
        for v in input.iter_mut() {
            *v = (rng.gen::<f32>() - 0.5) / d as f32;
        }
        let mut output = vec![0.0f32; vocab.len().max(1) * d];

        let mut word_vec = vec![0.0f32; d];
        let mut grad_in = vec![0.0f32; d];
        for epoch in 0..cfg.epochs {
            let lr = cfg.lr * (1.0 - epoch as f32 / cfg.epochs as f32).max(0.1);
            for line in &token_lines {
                let ids: Vec<&String> = line.iter().filter(|w| vocab.contains_key(*w)).collect();
                for (i, center) in ids.iter().enumerate() {
                    let buckets = ngram_buckets_cfg(center, &cfg);
                    // Compose the center vector from its n-gram buckets.
                    word_vec.iter_mut().for_each(|v| *v = 0.0);
                    for &b in &buckets {
                        for k in 0..d {
                            word_vec[k] += input[b * d + k];
                        }
                    }
                    let inv = 1.0 / buckets.len() as f32;
                    word_vec.iter_mut().for_each(|v| *v *= inv);

                    let lo = i.saturating_sub(cfg.window);
                    let hi = (i + cfg.window + 1).min(ids.len());
                    grad_in.iter_mut().for_each(|v| *v = 0.0);
                    let mut updated = false;
                    for (j, ctx) in ids.iter().enumerate().take(hi).skip(lo) {
                        if i == j {
                            continue;
                        }
                        updated = true;
                        let pos_id = vocab[ctx.as_str()];
                        // One positive + k negatives.
                        for neg in 0..=cfg.negatives {
                            let (target, label) = if neg == 0 {
                                (pos_id, 1.0f32)
                            } else {
                                (neg_table[rng.gen_range(0..neg_table.len())], 0.0f32)
                            };
                            let out = &mut output[target * d..(target + 1) * d];
                            let mut dot = 0.0f32;
                            for k in 0..d {
                                dot += word_vec[k] * out[k];
                            }
                            let p = 1.0 / (1.0 + (-dot).exp());
                            let g = (p - label) * lr;
                            for k in 0..d {
                                grad_in[k] += g * out[k];
                                out[k] -= g * word_vec[k];
                            }
                        }
                    }
                    if updated {
                        let scale = inv;
                        for &b in &buckets {
                            for k in 0..d {
                                input[b * d + k] -= grad_in[k] * scale;
                            }
                        }
                    }
                }
            }
        }
        FastText { cfg, input, vocab }
    }

    pub fn dim(&self) -> usize {
        self.cfg.dim
    }

    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Static embedding of one word: the mean of its n-gram bucket vectors.
    /// Out-of-vocabulary words still embed via their subwords — fastText's
    /// signature property.
    pub fn embed_word(&self, word: &str) -> Vec<f32> {
        let d = self.cfg.dim;
        let buckets = self.ngram_buckets(&word.to_lowercase());
        let mut v = vec![0.0f32; d];
        for &b in &buckets {
            for k in 0..d {
                v[k] += self.input[b * d + k];
            }
        }
        let inv = 1.0 / buckets.len().max(1) as f32;
        v.iter_mut().for_each(|x| *x *= inv);
        v
    }

    /// Mean word embedding of a text (column values or a column name).
    pub fn embed_text(&self, text: &str) -> Vec<f32> {
        let words = tokenize(text);
        let d = self.cfg.dim;
        if words.is_empty() {
            return vec![0.0; d];
        }
        let mut v = vec![0.0f32; d];
        for w in &words {
            let e = self.embed_word(w);
            for k in 0..d {
                v[k] += e[k];
            }
        }
        let inv = 1.0 / words.len() as f32;
        v.iter_mut().for_each(|x| *x *= inv);
        v
    }

    /// Mean embedding over a column's cell values (Table 9's
    /// "fastText + column value emb").
    pub fn embed_column_values(&self, values: &[String]) -> Vec<f32> {
        let d = self.cfg.dim;
        if values.is_empty() {
            return vec![0.0; d];
        }
        let mut v = vec![0.0f32; d];
        for val in values {
            let e = self.embed_text(val);
            for k in 0..d {
                v[k] += e[k];
            }
        }
        let inv = 1.0 / values.len() as f32;
        v.iter_mut().for_each(|x| *x *= inv);
        v
    }
}

fn ngram_buckets_cfg(word: &str, cfg: &FastTextConfig) -> Vec<usize> {
    let padded = format!("<{word}>");
    let chars: Vec<char> = padded.chars().collect();
    let mut out = Vec::new();
    for n in cfg.min_n..=cfg.max_n {
        if chars.len() < n {
            continue;
        }
        for w in chars.windows(n) {
            let s: String = w.iter().collect();
            out.push((fnv1a(s.as_bytes()) % cfg.buckets as u64) as usize);
        }
    }
    // Whole word too.
    out.push((fnv1a(padded.as_bytes()) % cfg.buckets as u64) as usize);
    out
}

/// Cosine similarity helper shared by the embedding baselines.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<String> {
        let mut c = Vec::new();
        for _ in 0..40 {
            c.push("the striker scored a goal in the football match".to_string());
            c.push("the keeper saved a goal in the football game".to_string());
            c.push("the bank raised the interest rate this quarter".to_string());
            c.push("the bank lowered the interest rate last quarter".to_string());
        }
        c
    }

    #[test]
    fn related_words_are_closer_than_unrelated() {
        let ft = FastText::train(&corpus(), FastTextConfig::default());
        let goal = ft.embed_word("goal");
        let football = ft.embed_word("football");
        let rate = ft.embed_word("rate");
        let sim_related = cosine(&goal, &football);
        let sim_unrelated = cosine(&goal, &rate);
        assert!(
            sim_related > sim_unrelated,
            "goal~football {sim_related} vs goal~rate {sim_unrelated}"
        );
    }

    #[test]
    fn embeddings_are_static() {
        // The same word in any context gets the same vector — the
        // anti-property vs Doduo the paper highlights in §3.2.
        let ft = FastText::train(&corpus(), FastTextConfig::default());
        assert_eq!(ft.embed_word("goal"), ft.embed_word("goal"));
        let a = ft.embed_text("goal in the match");
        let b = ft.embed_text("goal in the match");
        assert_eq!(a, b);
    }

    #[test]
    fn training_is_deterministic_for_a_seed() {
        // Two trainings must agree bitwise. This fails if any HashMap
        // iteration order leaks into training (each HashMap instance gets
        // its own RandomState, even within one thread).
        let a = FastText::train(&corpus(), FastTextConfig::default());
        let b = FastText::train(&corpus(), FastTextConfig::default());
        for w in ["goal", "football", "rate", "unseen-word"] {
            assert_eq!(a.embed_word(w), b.embed_word(w), "embeddings for {w:?} must match");
        }
    }

    #[test]
    fn oov_words_embed_via_subwords() {
        let ft = FastText::train(&corpus(), FastTextConfig::default());
        let oov = ft.embed_word("footballer"); // unseen, shares subwords
        assert!(oov.iter().any(|&v| v != 0.0));
        let sim = cosine(&oov, &ft.embed_word("football"));
        let far = cosine(&oov, &ft.embed_word("quarter"));
        assert!(
            sim > far,
            "subword sharing should make footballer~football ({sim}) > ~quarter ({far})"
        );
    }

    #[test]
    fn column_value_embedding_is_mean_like() {
        let ft = FastText::train(&corpus(), FastTextConfig::default());
        let vals = vec!["goal".to_string(), "goal".to_string()];
        let single = ft.embed_word("goal");
        let col = ft.embed_column_values(&vals);
        for (a, b) in single.iter().zip(col.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
        assert_eq!(ft.embed_column_values(&[]), vec![0.0; ft.dim()]);
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }
}
