//! Latent Dirichlet Allocation via collapsed Gibbs sampling.
//!
//! Sato augments Sherlock's per-column features with an LDA topic vector of
//! the *whole table* as "table context" (§5.2). This is a from-scratch LDA:
//! tables are documents, cell-value words are tokens, and the per-document
//! topic mixture is the feature Sato appends.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// LDA hyper-parameters.
#[derive(Clone, Debug)]
pub struct LdaConfig {
    pub n_topics: usize,
    pub alpha: f64,
    pub beta: f64,
    pub iterations: usize,
    pub seed: u64,
    /// Words occurring fewer times than this across the corpus are dropped.
    pub min_count: usize,
}

impl Default for LdaConfig {
    fn default() -> Self {
        LdaConfig { n_topics: 12, alpha: 0.5, beta: 0.1, iterations: 60, seed: 42, min_count: 2 }
    }
}

/// A fitted LDA model: vocabulary plus topic-word counts, enough to infer
/// topic mixtures for unseen documents.
pub struct Lda {
    cfg: LdaConfig,
    vocab: HashMap<String, usize>,
    /// `[topic][word]` counts from training.
    topic_word: Vec<Vec<u32>>,
    /// Total words per topic.
    topic_totals: Vec<u32>,
}

fn tokenize(doc: &str) -> impl Iterator<Item = String> + '_ {
    doc.split(|c: char| !c.is_alphanumeric()).filter(|w| w.len() >= 2).map(|w| w.to_lowercase())
}

impl Lda {
    /// Fits LDA on documents with collapsed Gibbs sampling.
    pub fn fit(docs: &[String], cfg: LdaConfig) -> Lda {
        // Build vocabulary.
        let mut counts: HashMap<String, usize> = HashMap::new();
        for d in docs {
            for w in tokenize(d) {
                *counts.entry(w).or_insert(0) += 1;
            }
        }
        let mut words: Vec<String> =
            counts.iter().filter(|(_, &c)| c >= cfg.min_count).map(|(w, _)| w.clone()).collect();
        words.sort_unstable();
        let vocab: HashMap<String, usize> =
            words.into_iter().enumerate().map(|(i, w)| (w, i)).collect();
        let v = vocab.len().max(1);
        let k = cfg.n_topics;

        // Tokenize documents into word ids.
        let doc_words: Vec<Vec<usize>> = docs
            .iter()
            .map(|d| tokenize(d).filter_map(|w| vocab.get(&w).copied()).collect())
            .collect();

        // Initialize assignments uniformly at random.
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut topic_word = vec![vec![0u32; v]; k];
        let mut topic_totals = vec![0u32; k];
        let mut doc_topic = vec![vec![0u32; k]; docs.len()];
        let mut assign: Vec<Vec<usize>> = doc_words
            .iter()
            .enumerate()
            .map(|(d, ws)| {
                ws.iter()
                    .map(|&w| {
                        let z = rng.gen_range(0..k);
                        topic_word[z][w] += 1;
                        topic_totals[z] += 1;
                        doc_topic[d][z] += 1;
                        z
                    })
                    .collect()
            })
            .collect();

        // Collapsed Gibbs sweeps.
        let mut probs = vec![0.0f64; k];
        for _ in 0..cfg.iterations {
            for d in 0..doc_words.len() {
                for (i, &w) in doc_words[d].iter().enumerate() {
                    let old = assign[d][i];
                    topic_word[old][w] -= 1;
                    topic_totals[old] -= 1;
                    doc_topic[d][old] -= 1;
                    let mut total = 0.0f64;
                    for (z, p) in probs.iter_mut().enumerate() {
                        let pw = (topic_word[z][w] as f64 + cfg.beta)
                            / (topic_totals[z] as f64 + cfg.beta * v as f64);
                        let pd = doc_topic[d][z] as f64 + cfg.alpha;
                        *p = pw * pd;
                        total += *p;
                    }
                    let mut x = rng.gen_range(0.0..total);
                    let mut new = k - 1;
                    for (z, &p) in probs.iter().enumerate() {
                        if x < p {
                            new = z;
                            break;
                        }
                        x -= p;
                    }
                    assign[d][i] = new;
                    topic_word[new][w] += 1;
                    topic_totals[new] += 1;
                    doc_topic[d][new] += 1;
                }
            }
        }

        Lda { cfg, vocab, topic_word, topic_totals }
    }

    pub fn n_topics(&self) -> usize {
        self.cfg.n_topics
    }

    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Infers the topic mixture of an unseen document by a few Gibbs sweeps
    /// with the topic-word counts frozen. Returns a normalized `[k]` vector.
    pub fn infer(&self, doc: &str) -> Vec<f32> {
        let k = self.cfg.n_topics;
        let v = self.vocab.len().max(1);
        let words: Vec<usize> = tokenize(doc).filter_map(|w| self.vocab.get(&w).copied()).collect();
        if words.is_empty() {
            return vec![1.0 / k as f32; k];
        }
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0x5ee0);
        let mut doc_topic = vec![0u32; k];
        let mut assign: Vec<usize> = words
            .iter()
            .map(|_| {
                let z = rng.gen_range(0..k);
                doc_topic[z] += 1;
                z
            })
            .collect();
        let mut probs = vec![0.0f64; k];
        for _ in 0..15 {
            for (i, &w) in words.iter().enumerate() {
                let old = assign[i];
                doc_topic[old] -= 1;
                let mut total = 0.0f64;
                for (z, p) in probs.iter_mut().enumerate() {
                    let pw = (self.topic_word[z][w] as f64 + self.cfg.beta)
                        / (self.topic_totals[z] as f64 + self.cfg.beta * v as f64);
                    let pd = doc_topic[z] as f64 + self.cfg.alpha;
                    *p = pw * pd;
                    total += *p;
                }
                let mut x = rng.gen_range(0.0..total);
                let mut new = k - 1;
                for (z, &p) in probs.iter().enumerate() {
                    if x < p {
                        new = z;
                        break;
                    }
                    x -= p;
                }
                assign[i] = new;
                doc_topic[new] += 1;
            }
        }
        let total: f32 = words.len() as f32;
        doc_topic.iter().map(|&c| c as f32 / total).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<String> {
        let mut docs = Vec::new();
        for i in 0..30 {
            if i % 2 == 0 {
                docs.push("goals assists points team player season league match win".to_string());
            } else {
                docs.push("revenue profit quarter earnings shares market stock price".to_string());
            }
        }
        docs
    }

    #[test]
    fn topics_separate_distinct_domains() {
        let lda =
            Lda::fit(&corpus(), LdaConfig { n_topics: 4, iterations: 80, ..Default::default() });
        let sports = lda.infer("player scored goals for the team in the match");
        let finance = lda.infer("the stock price and quarterly earnings beat the market");
        // Dominant topics must differ.
        let am = |v: &[f32]| {
            v.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0
        };
        assert_ne!(am(&sports), am(&finance), "sports {sports:?} vs finance {finance:?}");
    }

    #[test]
    fn mixtures_are_normalized() {
        let lda = Lda::fit(&corpus(), LdaConfig::default());
        for doc in ["goals team player", "revenue market", "zzz unseen words only"] {
            let m = lda.infer(doc);
            assert_eq!(m.len(), lda.n_topics());
            let s: f32 = m.iter().sum();
            assert!((s - 1.0).abs() < 1e-4, "mixture sums to {s}");
            assert!(m.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn fitting_is_deterministic() {
        let a = Lda::fit(&corpus(), LdaConfig::default());
        let b = Lda::fit(&corpus(), LdaConfig::default());
        assert_eq!(a.infer("goals team player"), b.infer("goals team player"));
    }

    #[test]
    fn min_count_prunes_vocabulary() {
        let docs = vec!["aaa bbb ccc".to_string(), "aaa bbb".to_string(), "aaa".to_string()];
        let lda = Lda::fit(&docs, LdaConfig { min_count: 2, ..Default::default() });
        assert_eq!(lda.vocab_size(), 2, "ccc appears once and must be pruned");
    }
}
