//! # doduo-baselines
//!
//! Every comparison system the paper evaluates against, built from scratch:
//!
//! * [`features`] / [`sherlock`] — Sherlock (KDD '19): per-column
//!   hand-crafted features + MLP, no table context (§5.2).
//! * [`lda`] / [`sato`] — Sato (VLDB '20): Sherlock + LDA topic features of
//!   the whole table + structured output over the column chain (§5.2).
//! * [`fasttext`] — fastText-style static subword embeddings, the
//!   case-study baseline (§7).
//! * [`matchers`] — COMA-style name matching and DistributionBased value
//!   matching from the Valentine suite (§7, Table 9).
//!
//! The TURL baseline is architectural rather than a separate system: it is
//! `doduo_core::AttentionMode::ColumnVisibility` (the visibility matrix of
//! §5.4) on the shared encoder, so it lives in `doduo-core`.

pub mod fasttext;
pub mod features;
pub mod lda;
pub mod matchers;
pub mod sato;
pub mod sherlock;

pub use fasttext::{cosine, FastText, FastTextConfig};
pub use features::{column_features, FEATURE_DIMS};
pub use lda::{Lda, LdaConfig};
pub use matchers::{
    coma_matches, distribution_matches, flatten_columns, name_similarity, ColumnRef,
};
pub use sato::{Sato, SatoConfig};
pub use sherlock::{featurize, ColumnExample, Sherlock, SherlockConfig};
