//! Sato (Zhang et al., VLDB 2020) — the multi-column feature baseline.
//!
//! Sato = Sherlock features + an LDA topic vector of the whole table (table
//! context) + structured output over the table's columns. The structured
//! layer here is a linear-chain CRF flavor: label transition potentials
//! estimated from adjacent gold column labels, combined with the MLP's
//! unary log-probabilities at inference time via Viterbi decoding — the
//! same decomposition (local evidence × label compatibility) as Sato's CRF.

#![allow(clippy::needless_range_loop)] // index loops over matrix coordinates are clearest here
use crate::lda::{Lda, LdaConfig};
use crate::sherlock::{ColumnExample, Sherlock, SherlockConfig};
use doduo_eval::{multi_label_micro, Prf};
use doduo_table::{AnnotatedTable, Dataset};
use doduo_tensor::{softmax_row, ParamStore};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Sato hyper-parameters.
#[derive(Clone, Debug)]
pub struct SatoConfig {
    pub mlp: SherlockConfig,
    pub lda: LdaConfig,
    /// Weight of the transition potentials relative to unary scores.
    pub transition_weight: f32,
}

impl Default for SatoConfig {
    fn default() -> Self {
        SatoConfig {
            mlp: SherlockConfig::default(),
            lda: LdaConfig::default(),
            transition_weight: 0.5,
        }
    }
}

/// A trained Sato model (self-contained: owns its parameter store).
pub struct Sato {
    cfg: SatoConfig,
    store: ParamStore,
    mlp: Sherlock,
    lda: Lda,
    /// `[from][to]` log transition potentials between adjacent column types.
    transitions: Vec<f32>,
    n_classes: usize,
}

fn table_document(at: &AnnotatedTable) -> String {
    let mut doc = String::new();
    for col in &at.table.columns {
        for v in &col.values {
            doc.push_str(v);
            doc.push(' ');
        }
    }
    doc
}

fn featurize_with_topics(at: &AnnotatedTable, lda: &Lda) -> Vec<ColumnExample> {
    let topics = lda.infer(&table_document(at));
    at.table
        .columns
        .iter()
        .enumerate()
        .map(|(c, col)| {
            let mut f = crate::features::column_features(col);
            f.extend_from_slice(&topics);
            ColumnExample { features: f, gold: at.col_types[c].clone() }
        })
        .collect()
}

impl Sato {
    /// Fits LDA, trains the unary MLP, and estimates transition potentials
    /// from adjacent gold labels (Laplace-smoothed log frequencies).
    pub fn train(train_ds: &Dataset, cfg: SatoConfig) -> Sato {
        let n_classes = train_ds.type_vocab.len();
        let docs: Vec<String> = train_ds.tables.iter().map(table_document).collect();
        let lda = Lda::fit(&docs, cfg.lda.clone());

        let examples: Vec<ColumnExample> =
            train_ds.tables.iter().flat_map(|at| featurize_with_topics(at, &lda)).collect();
        let input_dim = crate::features::FEATURE_DIMS + lda.n_topics();
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.mlp.seed);
        let mlp =
            Sherlock::with_input_dim(&mut store, input_dim, n_classes, cfg.mlp.clone(), &mut rng);
        mlp.train(&mut store, &examples);

        // Transition counts between adjacent columns (both directions).
        let mut counts = vec![1.0f64; n_classes * n_classes]; // Laplace smoothing
        for at in &train_ds.tables {
            for w in at.col_types.windows(2) {
                // Use the primary label of each column.
                let a = w[0][0] as usize;
                let b = w[1][0] as usize;
                counts[a * n_classes + b] += 1.0;
            }
        }
        let mut transitions = vec![0.0f32; n_classes * n_classes];
        for a in 0..n_classes {
            let row_total: f64 = counts[a * n_classes..(a + 1) * n_classes].iter().sum();
            for b in 0..n_classes {
                transitions[a * n_classes + b] =
                    (counts[a * n_classes + b] / row_total).ln() as f32;
            }
        }
        Sato { cfg, store, mlp, lda, transitions, n_classes }
    }

    /// Unary log-probabilities for every column of a table.
    fn unary_log_probs(&self, at: &AnnotatedTable) -> Vec<Vec<f32>> {
        featurize_with_topics(at, &self.lda)
            .iter()
            .map(|ex| {
                let mut logits = self.mlp.predict_logits(&self.store, &ex.features);
                softmax_row(&mut logits);
                logits.iter_mut().for_each(|p| *p = p.max(1e-12).ln());
                logits
            })
            .collect()
    }

    /// Viterbi decoding over the column chain.
    pub fn predict_table(&self, at: &AnnotatedTable) -> Vec<u32> {
        let unary = self.unary_log_probs(at);
        let n = unary.len();
        let c = self.n_classes;
        if n == 0 {
            return Vec::new();
        }
        let lam = self.cfg.transition_weight;
        let mut dp = unary[0].clone();
        let mut back: Vec<Vec<usize>> = Vec::with_capacity(n);
        for col in unary.iter().take(n).skip(1) {
            let mut next = vec![f32::NEG_INFINITY; c];
            let mut bp = vec![0usize; c];
            for b in 0..c {
                for a in 0..c {
                    let s = dp[a] + lam * self.transitions[a * c + b];
                    if s > next[b] {
                        next[b] = s;
                        bp[b] = a;
                    }
                }
                next[b] += col[b];
            }
            dp = next;
            back.push(bp);
        }
        // Trace back.
        let mut best = 0usize;
        for b in 0..c {
            if dp[b] > dp[best] {
                best = b;
            }
        }
        let mut path = vec![best; n];
        for i in (0..n - 1).rev() {
            path[i] = back[i][path[i + 1]];
        }
        path.into_iter().map(|p| p as u32).collect()
    }

    /// Predictions for a whole dataset, flattened per column.
    pub fn predict(&self, ds: &Dataset) -> Vec<Vec<u32>> {
        ds.tables
            .iter()
            .flat_map(|at| self.predict_table(at).into_iter().map(|p| vec![p]))
            .collect()
    }

    /// Micro P/R/F1 over a dataset.
    pub fn evaluate(&self, ds: &Dataset) -> Prf {
        let pred = self.predict(ds);
        let gold: Vec<Vec<u32>> =
            ds.tables.iter().flat_map(|at| at.col_types.iter().map(|g| vec![g[0]])).collect();
        multi_label_micro(&pred, &gold)
    }

    /// Single-label predictions (for macro-F1 / per-class reporting).
    pub fn predict_single(&self, ds: &Dataset) -> (Vec<u32>, Vec<u32>) {
        let pred: Vec<u32> = ds.tables.iter().flat_map(|at| self.predict_table(at)).collect();
        let gold: Vec<u32> =
            ds.tables.iter().flat_map(|at| at.col_types.iter().map(|g| g[0])).collect();
        (pred, gold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sherlock::featurize;
    use doduo_datagen::{generate_viznet, KbConfig, KnowledgeBase, VizNetConfig};

    #[test]
    fn sato_beats_context_free_sherlock() {
        let kb = KnowledgeBase::generate(&KbConfig::default(), 42);
        let ds = generate_viznet(&kb, &VizNetConfig { n_tables: 250, ..Default::default() });
        let mut rng = StdRng::seed_from_u64(1);
        let n_types = ds.type_vocab.len();
        let (train_ds, _valid, test_ds) = ds.split(0.8, 0.0, &mut rng);

        let sato = Sato::train(
            &train_ds,
            SatoConfig {
                mlp: SherlockConfig { epochs: 40, ..Default::default() },
                ..Default::default()
            },
        );
        let sato_f1 = sato.evaluate(&test_ds).f1;

        let mut store = ParamStore::new();
        let mut rng2 = StdRng::seed_from_u64(1);
        let sherlock = Sherlock::new(
            &mut store,
            n_types,
            SherlockConfig { epochs: 40, ..Default::default() },
            &mut rng2,
        );
        sherlock.train(&mut store, &featurize(&train_ds));
        let sherlock_f1 = sherlock.evaluate(&store, &featurize(&test_ds)).f1;

        // The paper's qualitative claim (Table 4): Sato > Sherlock. Allow a
        // small tolerance for seed noise but require Sato to be at least
        // competitive.
        assert!(
            sato_f1 > sherlock_f1 - 0.02,
            "sato {sato_f1} should not trail sherlock {sherlock_f1}"
        );
        assert!(sato_f1 > 0.35, "sato F1 {sato_f1}");
    }

    #[test]
    fn viterbi_path_length_matches_columns() {
        let kb = KnowledgeBase::generate(&KbConfig::default(), 42);
        let ds = generate_viznet(&kb, &VizNetConfig { n_tables: 60, ..Default::default() });
        let sato = Sato::train(
            &ds,
            SatoConfig {
                mlp: SherlockConfig { epochs: 5, ..Default::default() },
                lda: LdaConfig { iterations: 10, ..Default::default() },
                ..Default::default()
            },
        );
        for at in ds.tables.iter().take(10) {
            let path = sato.predict_table(at);
            assert_eq!(path.len(), at.table.n_cols());
            assert!(path.iter().all(|&p| (p as usize) < ds.type_vocab.len()));
        }
    }
}
