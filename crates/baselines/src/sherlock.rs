//! Sherlock (Hulsebos et al., KDD 2019) — the single-column baseline.
//!
//! Per-column hand-crafted features feed a small feed-forward network
//! ("sub networks" + "primary network" in the original; here one fused MLP
//! since our feature blocks are already compact). No table context: each
//! column is classified independently, which is the property the paper's
//! comparisons isolate.

use crate::features::{column_features, FEATURE_DIMS};
use doduo_eval::{multi_label_micro, Prf};
use doduo_table::Dataset;
use doduo_tensor::{accumulate_parallel, Adam, LrSchedule, ParamId, ParamStore, Tape, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// MLP hyper-parameters.
#[derive(Clone, Debug)]
pub struct SherlockConfig {
    pub hidden: usize,
    pub epochs: usize,
    pub batch_size: usize,
    pub lr: f32,
    pub dropout: f32,
    pub seed: u64,
    pub threads: usize,
    /// Multi-label (BCE) vs multi-class (CE) — matches the dataset regime.
    pub multi_label: bool,
    /// Positive-class weight for BCE (see the trainer's discussion).
    pub pos_weight: f32,
}

impl Default for SherlockConfig {
    fn default() -> Self {
        SherlockConfig {
            hidden: 96,
            epochs: 60,
            batch_size: 32,
            lr: 2e-3,
            dropout: 0.2,
            seed: 42,
            threads: doduo_tensor::default_threads(),
            multi_label: false,
            pos_weight: 10.0,
        }
    }
}

/// A featurized column example.
#[derive(Clone, Debug)]
pub struct ColumnExample {
    pub features: Vec<f32>,
    pub gold: Vec<u32>,
}

/// Featurizes every annotated column of a dataset.
pub fn featurize(ds: &Dataset) -> Vec<ColumnExample> {
    let mut out = Vec::with_capacity(ds.n_columns());
    for at in &ds.tables {
        for (c, col) in at.table.columns.iter().enumerate() {
            out.push(ColumnExample {
                features: column_features(col),
                gold: at.col_types[c].clone(),
            });
        }
    }
    out
}

/// The trained Sherlock model.
pub struct Sherlock {
    cfg: SherlockConfig,
    n_classes: usize,
    w1: ParamId,
    b1: ParamId,
    w2: ParamId,
    b2: ParamId,
    w_out: ParamId,
    b_out: ParamId,
}

impl Sherlock {
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        n_classes: usize,
        cfg: SherlockConfig,
        rng: &mut R,
    ) -> Self {
        Self::with_input_dim(store, FEATURE_DIMS, n_classes, cfg, rng)
    }

    /// Variant with a custom input width — Sato appends LDA topic features
    /// to the Sherlock feature vector, widening the input.
    pub fn with_input_dim<R: Rng + ?Sized>(
        store: &mut ParamStore,
        input_dim: usize,
        n_classes: usize,
        cfg: SherlockConfig,
        rng: &mut R,
    ) -> Self {
        let h = cfg.hidden;
        // He-style init for ReLU layers.
        let s1 = (2.0 / input_dim as f32).sqrt();
        let s2 = (2.0 / h as f32).sqrt();
        Sherlock {
            w1: store.add_randn("sherlock.w1", input_dim, h, s1, rng),
            b1: store.add_zeros("sherlock.b1", 1, h),
            w2: store.add_randn("sherlock.w2", h, h, s2, rng),
            b2: store.add_zeros("sherlock.b2", 1, h),
            w_out: store.add_randn("sherlock.w_out", h, n_classes, s2, rng),
            b_out: store.add_zeros("sherlock.b_out", 1, n_classes),
            n_classes,
            cfg,
        }
    }

    fn logits<R: Rng + ?Sized>(
        &self,
        tape: &mut Tape<'_>,
        features: &[f32],
        rng: &mut R,
    ) -> doduo_tensor::NodeId {
        let x = tape.input(Tensor::row_vector(features.to_vec()));
        let h1 = tape.linear(x, self.w1, self.b1);
        let a1 = tape.relu(h1);
        let a1 = tape.dropout(a1, self.cfg.dropout, rng);
        let h2 = tape.linear(a1, self.w2, self.b2);
        let a2 = tape.relu(h2);
        let a2 = tape.dropout(a2, self.cfg.dropout, rng);
        tape.linear(a2, self.w_out, self.b_out)
    }

    /// Trains on featurized columns; returns mean loss per epoch.
    pub fn train(&self, store: &mut ParamStore, examples: &[ColumnExample]) -> Vec<f32> {
        assert!(!examples.is_empty(), "no training columns");
        let cfg = &self.cfg;
        let steps = cfg.epochs * examples.len().div_ceil(cfg.batch_size);
        let mut opt = Adam::new(store, LrSchedule::LinearDecay { lr0: cfg.lr, total_steps: steps });
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut order: Vec<usize> = (0..examples.len()).collect();
        let mut losses = Vec::with_capacity(cfg.epochs);
        for _ in 0..cfg.epochs {
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let mut total = 0.0f32;
            for batch in order.chunks(cfg.batch_size) {
                let salt = rng.gen::<u64>();
                let (mut grads, loss) =
                    accumulate_parallel(store, batch, cfg.threads, |tape, &idx, k| {
                        let mut item_rng = StdRng::seed_from_u64(
                            salt ^ (k as u64).wrapping_mul(0x9E3779B97F4A7C15),
                        );
                        let ex = &examples[idx];
                        let logits = self.logits(tape, &ex.features, &mut item_rng);
                        if self.cfg.multi_label {
                            let mut t = Tensor::zeros(1, self.n_classes);
                            for &g in &ex.gold {
                                t.set(0, g as usize, 1.0);
                            }
                            tape.bce_logits_weighted(logits, &t, self.cfg.pos_weight)
                        } else {
                            tape.softmax_ce(logits, &[ex.gold[0]])
                        }
                    });
                grads.scale(1.0 / batch.len() as f32);
                grads.clip_global_norm(5.0);
                opt.step(store, &grads);
                total += loss;
            }
            losses.push(total / examples.len() as f32);
        }
        losses
    }

    /// Raw logits for one feature vector (inference).
    pub fn predict_logits(&self, store: &ParamStore, features: &[f32]) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(0);
        let mut tape = Tape::inference(store);
        let logits = self.logits(&mut tape, features, &mut rng);
        tape.value(logits).row(0).to_vec()
    }

    /// Label-set predictions for a batch of examples.
    pub fn predict(&self, store: &ParamStore, examples: &[ColumnExample]) -> Vec<Vec<u32>> {
        examples
            .iter()
            .map(|ex| {
                let logits = self.predict_logits(store, &ex.features);
                decode(&logits, self.cfg.multi_label)
            })
            .collect()
    }

    /// Micro P/R/F1 on a featurized evaluation set.
    pub fn evaluate(&self, store: &ParamStore, examples: &[ColumnExample]) -> Prf {
        let pred = self.predict(store, examples);
        let gold: Vec<Vec<u32>> = examples.iter().map(|e| e.gold.clone()).collect();
        multi_label_micro(&pred, &gold)
    }
}

fn decode(logits: &[f32], multi_label: bool) -> Vec<u32> {
    if multi_label {
        let mut out: Vec<u32> =
            logits.iter().enumerate().filter(|&(_, &z)| z > 0.0).map(|(i, _)| i as u32).collect();
        if out.is_empty() {
            out.push(argmax(logits));
        }
        out
    } else {
        vec![argmax(logits)]
    }
}

fn argmax(xs: &[f32]) -> u32 {
    let mut best = 0usize;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use doduo_datagen::{generate_viznet, KbConfig, KnowledgeBase, VizNetConfig};

    #[test]
    fn sherlock_learns_viznet_types() {
        let kb = KnowledgeBase::generate(&KbConfig::default(), 42);
        let ds = generate_viznet(&kb, &VizNetConfig { n_tables: 250, ..Default::default() });
        let mut rng = StdRng::seed_from_u64(1);
        let n_types = ds.type_vocab.len();
        let (train_ds, _valid, test_ds) = ds.split(0.8, 0.0, &mut rng);
        let train_ex = featurize(&train_ds);
        let test_ex = featurize(&test_ds);
        let mut store = ParamStore::new();
        let cfg = SherlockConfig { epochs: 40, ..Default::default() };
        let model = Sherlock::new(&mut store, n_types, cfg, &mut rng);
        let losses = model.train(&mut store, &train_ex);
        assert!(losses.last().unwrap() < &losses[0], "loss must drop: {losses:?}");
        let prf = model.evaluate(&store, &test_ex);
        // Many VizNet types are recognizable from values alone; Sherlock
        // should clearly beat random (1/78) but stay imperfect.
        assert!(prf.f1 > 0.35, "sherlock F1 {}", prf.f1);
    }

    #[test]
    fn multilabel_mode_emits_at_least_one_label() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = SherlockConfig { multi_label: true, ..Default::default() };
        let model = Sherlock::new(&mut store, 5, cfg, &mut rng);
        let ex = ColumnExample { features: vec![0.1; FEATURE_DIMS], gold: vec![0] };
        let pred = model.predict(&store, &[ex]);
        assert!(!pred[0].is_empty());
    }
}
