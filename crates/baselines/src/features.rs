//! Sherlock-style hand-crafted column features (§5.2).
//!
//! Sherlock extracts "character embeddings, word embeddings, paragraph
//! embeddings, and column statistics" per column. This reproduction keeps
//! the same information sources at reduced dimensionality: character-class
//! statistics, cell-length statistics, numeric-value statistics, and hashed
//! character-n-gram / word buckets standing in for the embedding feature
//! sets. All features are deterministic functions of the column content —
//! crucially *no table context*, which is exactly Sherlock's limitation the
//! paper contrasts against.

use doduo_table::Column;

/// Number of hashed character-trigram buckets.
pub const NGRAM_BUCKETS: usize = 64;
/// Number of hashed word buckets.
pub const WORD_BUCKETS: usize = 32;
/// Fixed statistics preceding the hashed buckets.
pub const STAT_DIMS: usize = 18;
/// Total feature dimensionality.
pub const FEATURE_DIMS: usize = STAT_DIMS + NGRAM_BUCKETS + WORD_BUCKETS;

/// FNV-1a — a small, dependency-free, stable hash for feature bucketing.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn mean_std(xs: &[f32]) -> (f32, f32) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f32>() / xs.len() as f32;
    let var = xs.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / xs.len() as f32;
    (mean, var.sqrt())
}

/// Extracts the feature vector for one column.
pub fn column_features(col: &Column) -> Vec<f32> {
    let mut out = vec![0.0f32; FEATURE_DIMS];
    let n = col.values.len().max(1) as f32;

    // Character-class fractions, averaged over cells.
    let mut digit = 0.0;
    let mut alpha = 0.0;
    let mut punct = 0.0;
    let mut space = 0.0;
    let mut lengths = Vec::with_capacity(col.values.len());
    let mut word_counts = Vec::with_capacity(col.values.len());
    let mut numeric_vals = Vec::new();
    let mut distinct = std::collections::HashSet::new();
    for v in &col.values {
        let chars = v.chars().count().max(1) as f32;
        digit += v.chars().filter(|c| c.is_ascii_digit()).count() as f32 / chars;
        alpha += v.chars().filter(|c| c.is_alphabetic()).count() as f32 / chars;
        punct += v.chars().filter(|c| c.is_ascii_punctuation()).count() as f32 / chars;
        space += v.chars().filter(|c| c.is_whitespace()).count() as f32 / chars;
        lengths.push(v.chars().count() as f32);
        word_counts.push(v.split_whitespace().count() as f32);
        if let Ok(x) = v.trim().parse::<f64>() {
            numeric_vals.push(x as f32);
        }
        distinct.insert(v.as_str());
    }
    let (len_mean, len_std) = mean_std(&lengths);
    let (wc_mean, wc_std) = mean_std(&word_counts);
    let (num_mean, num_std) = mean_std(&numeric_vals);
    let len_min = lengths.iter().copied().fold(f32::INFINITY, f32::min);
    let len_max = lengths.iter().copied().fold(0.0f32, f32::max);
    let num_min = numeric_vals.iter().copied().fold(f32::INFINITY, f32::min);
    let num_max = numeric_vals.iter().copied().fold(f32::NEG_INFINITY, f32::max);

    let stats = [
        digit / n,
        alpha / n,
        punct / n,
        space / n,
        len_mean / 32.0,
        len_std / 16.0,
        if len_min.is_finite() { len_min / 32.0 } else { 0.0 },
        len_max / 64.0,
        wc_mean / 8.0,
        wc_std / 4.0,
        numeric_vals.len() as f32 / n, // fraction numeric
        soft_log(num_mean),
        soft_log(num_std),
        soft_log(num_min),
        soft_log(num_max),
        distinct.len() as f32 / n, // distinct ratio
        col.values.len() as f32 / 16.0,
        col.values.iter().filter(|v| v.trim().is_empty()).count() as f32 / n,
    ];
    out[..STAT_DIMS].copy_from_slice(&stats);

    // Hashed character trigrams (with boundary markers), L1-normalized.
    let mut total_tri = 0.0f32;
    for v in &col.values {
        let padded = format!("^{}$", v.to_lowercase());
        let bytes: Vec<char> = padded.chars().collect();
        for w in bytes.windows(3) {
            let s: String = w.iter().collect();
            let b = (fnv1a(s.as_bytes()) % NGRAM_BUCKETS as u64) as usize;
            out[STAT_DIMS + b] += 1.0;
            total_tri += 1.0;
        }
    }
    if total_tri > 0.0 {
        for v in &mut out[STAT_DIMS..STAT_DIMS + NGRAM_BUCKETS] {
            *v /= total_tri;
        }
    }

    // Hashed word unigrams, L1-normalized.
    let mut total_w = 0.0f32;
    for v in &col.values {
        for w in v.to_lowercase().split_whitespace() {
            let b = (fnv1a(w.as_bytes()) % WORD_BUCKETS as u64) as usize;
            out[STAT_DIMS + NGRAM_BUCKETS + b] += 1.0;
            total_w += 1.0;
        }
    }
    if total_w > 0.0 {
        for v in &mut out[STAT_DIMS + NGRAM_BUCKETS..] {
            *v /= total_w;
        }
    }
    out
}

/// Signed log compression for unbounded numeric statistics.
fn soft_log(x: f32) -> f32 {
    if !x.is_finite() {
        return 0.0;
    }
    x.signum() * x.abs().ln_1p() / 16.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(vals: &[&str]) -> Column {
        Column::new(vals.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn feature_vector_has_fixed_dims_and_is_finite() {
        for vals in [
            vec!["hello", "world"],
            vec!["1", "2", "3"],
            vec![""],
            vec!["3.14", "abc", "x y z", "192.168.0.1"],
        ] {
            let f = column_features(&col(&vals));
            assert_eq!(f.len(), FEATURE_DIMS);
            assert!(f.iter().all(|v| v.is_finite()), "{vals:?} -> non-finite");
        }
    }

    #[test]
    fn numeric_columns_have_high_numeric_fraction() {
        let numeric = column_features(&col(&["1", "22", "333"]));
        let textual = column_features(&col(&["alpha", "beta", "gamma"]));
        // stats[10] is the numeric fraction.
        assert!(numeric[10] > 0.99);
        assert!(textual[10] < 0.01);
        // digit fraction (stats[0]) separates them too.
        assert!(numeric[0] > textual[0]);
    }

    #[test]
    fn distinct_ratio_detects_repetition() {
        let repeated = column_features(&col(&["yes", "yes", "yes", "yes"]));
        let unique = column_features(&col(&["a", "b", "c", "d"]));
        assert!(repeated[15] < unique[15]);
    }

    #[test]
    fn features_are_deterministic_and_content_sensitive() {
        let a = column_features(&col(&["george miller", "john lasseter"]));
        let b = column_features(&col(&["george miller", "john lasseter"]));
        assert_eq!(a, b);
        let c = column_features(&col(&["12:30", "14:55"]));
        assert_ne!(a, c);
    }

    #[test]
    fn empty_column_is_safe() {
        let f = column_features(&col(&[]));
        assert_eq!(f.len(), FEATURE_DIMS);
        assert!(f.iter().all(|v| v.is_finite()));
    }
}
