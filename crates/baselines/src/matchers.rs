//! Traditional schema matchers from the Valentine suite (§7, Table 9):
//! a COMA-style name-based matcher and a DistributionBased value matcher.
//! Both emit matched column pairs across tables; the case study merges the
//! pairs into connected components and scores the resulting clustering.

use doduo_table::{Column, Table};

/// A column addressed globally across a set of tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ColumnRef {
    pub table: usize,
    pub column: usize,
}

/// Flattens tables into a global column list (the order the case study's
/// ground truth uses).
pub fn flatten_columns(tables: &[Table]) -> Vec<ColumnRef> {
    let mut out = Vec::new();
    for (t, table) in tables.iter().enumerate() {
        for c in 0..table.n_cols() {
            out.push(ColumnRef { table: t, column: c });
        }
    }
    out
}

fn column(tables: &[Table], r: ColumnRef) -> &Column {
    &tables[r.table].columns[r.column]
}

// ------------------------------------------------------------------ COMA

/// Character-trigram set of a lower-cased identifier.
fn trigrams(s: &str) -> std::collections::HashSet<String> {
    let norm: String =
        s.to_lowercase().chars().map(|c| if c.is_alphanumeric() { c } else { '_' }).collect();
    let padded = format!("__{norm}__");
    let chars: Vec<char> = padded.chars().collect();
    chars.windows(3).map(|w| w.iter().collect()).collect()
}

/// Levenshtein distance (iterative, two rows).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// COMA-style composite name similarity in `[0, 1]`: the maximum of trigram
/// Jaccard, normalized edit similarity, and token overlap of snake_case /
/// whitespace tokens (COMA's "composite of matchers" idea).
pub fn name_similarity(a: &str, b: &str) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let al = a.to_lowercase();
    let bl = b.to_lowercase();
    if al == bl {
        return 1.0;
    }
    let tri_a = trigrams(&al);
    let tri_b = trigrams(&bl);
    let inter = tri_a.intersection(&tri_b).count() as f64;
    let union = (tri_a.len() + tri_b.len()) as f64 - inter;
    let tri_sim = if union > 0.0 { inter / union } else { 0.0 };

    let ed = edit_distance(&al, &bl) as f64;
    let ed_sim = 1.0 - ed / al.len().max(bl.len()) as f64;

    let tok = |s: &str| -> std::collections::HashSet<String> {
        s.split(|c: char| !c.is_alphanumeric())
            .filter(|t| !t.is_empty())
            .map(|t| t.to_string())
            .collect()
    };
    let ta = tok(&al);
    let tb = tok(&bl);
    let t_inter = ta.intersection(&tb).count() as f64;
    let t_union = (ta.len() + tb.len()) as f64 - t_inter;
    let tok_sim = if t_union > 0.0 { t_inter / t_union } else { 0.0 };

    tri_sim.max(ed_sim).max(tok_sim)
}

/// COMA-style matcher: matches cross-table column pairs whose *names* score
/// above `threshold`.
pub fn coma_matches(tables: &[Table], threshold: f64) -> Vec<(usize, usize)> {
    let cols = flatten_columns(tables);
    let mut out = Vec::new();
    for i in 0..cols.len() {
        for j in i + 1..cols.len() {
            if cols[i].table == cols[j].table {
                continue; // matchers compare across tables
            }
            let (Some(na), Some(nb)) =
                (column(tables, cols[i]).name.as_deref(), column(tables, cols[j]).name.as_deref())
            else {
                continue;
            };
            if name_similarity(na, nb) >= threshold {
                out.push((i, j));
            }
        }
    }
    out
}

// -------------------------------------------------- DistributionBased

/// Distribution signature of a column: exact-value set for categorical
/// columns; quantile sketch for numeric-like columns.
#[derive(Clone, Debug)]
enum Signature {
    Categorical(std::collections::HashSet<String>),
    Numeric { quantiles: Vec<f64> },
}

fn signature(col: &Column) -> Signature {
    let numeric = col.numeric_fraction() > 0.8;
    if numeric {
        let mut vals: Vec<f64> = col
            .values
            .iter()
            .filter_map(|v| {
                let cleaned: String =
                    v.chars().filter(|c| c.is_ascii_digit() || *c == '.' || *c == '-').collect();
                cleaned.parse::<f64>().ok()
            })
            .collect();
        vals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        if vals.is_empty() {
            return Signature::Categorical(Default::default());
        }
        let q = |p: f64| vals[((vals.len() - 1) as f64 * p).round() as usize];
        Signature::Numeric { quantiles: vec![q(0.0), q(0.25), q(0.5), q(0.75), q(1.0)] }
    } else {
        Signature::Categorical(col.values.iter().map(|v| v.to_lowercase()).collect())
    }
}

fn signature_similarity(a: &Signature, b: &Signature) -> f64 {
    match (a, b) {
        (Signature::Categorical(sa), Signature::Categorical(sb)) => {
            if sa.is_empty() || sb.is_empty() {
                return 0.0;
            }
            let inter = sa.intersection(sb).count() as f64;
            let union = (sa.len() + sb.len()) as f64 - inter;
            inter / union
        }
        (Signature::Numeric { quantiles: qa }, Signature::Numeric { quantiles: qb }) => {
            // Overlap of the quantile profiles on a log-ish scale.
            let mut sim = 0.0;
            for (x, y) in qa.iter().zip(qb.iter()) {
                let denom = x.abs().max(y.abs()).max(1.0);
                sim += 1.0 - ((x - y).abs() / denom).min(1.0);
            }
            sim / qa.len() as f64
        }
        _ => 0.0,
    }
}

/// DistributionBased matcher (Zhang et al., SIGMOD 2011 flavor): matches
/// cross-table pairs whose *value distributions* score above `threshold`.
pub fn distribution_matches(tables: &[Table], threshold: f64) -> Vec<(usize, usize)> {
    let cols = flatten_columns(tables);
    let sigs: Vec<Signature> = cols.iter().map(|&r| signature(column(tables, r))).collect();
    let mut out = Vec::new();
    for i in 0..cols.len() {
        for j in i + 1..cols.len() {
            if cols[i].table == cols[j].table {
                continue;
            }
            if signature_similarity(&sigs[i], &sigs[j]) >= threshold {
                out.push((i, j));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_similarity_orders_sensibly() {
        assert_eq!(name_similarity("user_id", "user_id"), 1.0);
        let close = name_similarity("user_id", "uid");
        let far = name_similarity("user_id", "browser");
        assert!(close > far, "user_id~uid {close} vs user_id~browser {far}");
        assert!(name_similarity("created_at", "create_date") > 0.3);
        assert_eq!(name_similarity("", "x"), 0.0);
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", "abd"), 1);
        assert_eq!(edit_distance("", "xyz"), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }

    fn mk_table(id: &str, cols: Vec<(&str, Vec<&str>)>) -> Table {
        Table::new(
            id,
            cols.into_iter()
                .map(|(n, vs)| {
                    Column::with_name(n, vs.into_iter().map(|s| s.to_string()).collect())
                })
                .collect(),
        )
    }

    #[test]
    fn coma_matches_same_names_across_tables() {
        let tables = vec![
            mk_table("a", vec![("user_id", vec!["u1", "u2"]), ("city", vec!["rome", "pisa"])]),
            mk_table("b", vec![("user_id", vec!["u3"]), ("rating", vec!["4.5"])]),
        ];
        let m = coma_matches(&tables, 0.8);
        // Global indices: a.user_id=0, a.city=1, b.user_id=2, b.rating=3.
        assert!(m.contains(&(0, 2)));
        assert!(!m.contains(&(1, 3)));
        // Within-table pairs are never matched.
        assert!(m.iter().all(|&(i, j)| !(i == 0 && j == 1)));
    }

    #[test]
    fn distribution_matches_value_overlap() {
        let tables = vec![
            mk_table("a", vec![("x", vec!["active", "pending", "closed"])]),
            mk_table("b", vec![("y", vec!["active", "pending", "archived"])]),
            mk_table("c", vec![("z", vec!["chrome", "firefox", "safari"])]),
        ];
        let m = distribution_matches(&tables, 0.3);
        assert!(m.contains(&(0, 1)), "status-ish columns share values: {m:?}");
        assert!(!m.contains(&(0, 2)));
    }

    #[test]
    fn numeric_signatures_compare_by_quantiles() {
        let tables = vec![
            mk_table("a", vec![("ts", vec!["1600000000", "1600000500", "1601000000"])]),
            mk_table("b", vec![("epoch", vec!["1600200000", "1600300000", "1600900000"])]),
            mk_table("c", vec![("rating", vec!["1.5", "3.0", "4.5"])]),
        ];
        let m = distribution_matches(&tables, 0.8);
        assert!(m.contains(&(0, 1)), "unix timestamps overlap: {m:?}");
        assert!(!m.contains(&(0, 2)), "timestamps vs ratings must not match");
    }

    #[test]
    fn flatten_columns_order_is_row_major() {
        let tables = vec![
            mk_table("a", vec![("x", vec!["1"]), ("y", vec!["2"])]),
            mk_table("b", vec![("z", vec!["3"])]),
        ];
        let cols = flatten_columns(&tables);
        assert_eq!(cols.len(), 3);
        assert_eq!(cols[0], ColumnRef { table: 0, column: 0 });
        assert_eq!(cols[2], ColumnRef { table: 1, column: 0 });
    }
}
